#include "model/ngram_model.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <list>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "util/errors.hpp"
#include "util/sync.hpp"

namespace relm::model {

std::uint64_t NgramModel::context_key(std::span<const TokenId> ctx) {
  // 64-bit keys over short contexts make collisions (which would silently
  // merge two contexts' statistics) vanishingly unlikely at this scale.
  return hash_tokens(ctx);
}

std::shared_ptr<NgramModel> NgramModel::train(
    const tokenizer::BpeTokenizer& tok, const std::vector<std::string>& documents,
    const Config& config, const std::vector<std::string>& subword_prior_documents) {
  util::Pcg32 rng(config.encoding_seed);
  std::vector<std::vector<TokenId>> sequences;
  sequences.reserve(documents.size() + subword_prior_documents.size());
  for (const std::string& doc : documents) {
    if (config.non_canonical_document_rate > 0.0 &&
        rng.uniform() < config.non_canonical_document_rate) {
      sequences.push_back(
          tok.encode_random(doc, rng, config.non_canonical_step_prob));
    } else {
      sequences.push_back(tok.encode(doc));
    }
  }
  for (const std::string& doc : subword_prior_documents) {
    sequences.push_back(tok.encode_random(doc, rng, /*step_prob=*/0.5));
  }
  return train_on_tokens(tok.vocab_size(), tok.eos(), sequences, config);
}

std::shared_ptr<NgramModel> NgramModel::train_on_tokens(
    std::size_t vocab_size, TokenId eos,
    const std::vector<std::vector<TokenId>>& sequences, const Config& config) {
  if (config.order < 1) throw relm::Error("n-gram order must be >= 1");
  auto model = std::shared_ptr<NgramModel>(new NgramModel());
  model->config_ = config;
  model->vocab_size_ = vocab_size;
  model->eos_ = eos;
  model->tables_.resize(config.order);

  for (const auto& seq : sequences) {
    // EOS acts as both document start and end marker: the empty context plus
    // EOS-delimited boundaries give the model document-initial statistics.
    std::vector<TokenId> wrapped;
    wrapped.reserve(seq.size() + 2);
    wrapped.push_back(eos);
    wrapped.insert(wrapped.end(), seq.begin(), seq.end());
    wrapped.push_back(eos);
    model->count_sequence(wrapped);
  }
  return model;
}

void NgramModel::count_sequence(const std::vector<TokenId>& seq) {
  // Position i predicts seq[i] from the k tokens before it, for every
  // context length k < order. Position 0 (the leading EOS) is context only.
  for (std::size_t i = 1; i < seq.size(); ++i) {
    for (std::size_t k = 0; k < tables_.size(); ++k) {
      if (k > i) break;
      std::span<const TokenId> ctx(seq.data() + (i - k), k);
      ContextStats& stats = tables_[k][context_key(ctx)];
      ++stats.counts[seq[i]];
      ++stats.total;
    }
  }
}

std::vector<double> NgramModel::next_log_probs(std::span<const TokenId> context) const {
  const std::size_t V = vocab_size_;
  // Start from uniform and interpolate upward through the orders.
  std::vector<double> probs(V, 1.0 / static_cast<double>(V));

  // Generation is document-anchored: a context shorter than the window is
  // implicitly preceded by the document boundary (GPT-2's <|endoftext|>),
  // matching how training sequences are EOS-wrapped.
  std::vector<TokenId> anchored;
  if (context.size() + 1 < tables_.size()) {
    anchored.reserve(context.size() + 1);
    anchored.push_back(eos_);
    anchored.insert(anchored.end(), context.begin(), context.end());
    context = anchored;
  }

  const std::size_t max_k = std::min(context.size(), tables_.size() - 1);
  for (std::size_t k = 0; k <= max_k; ++k) {
    std::span<const TokenId> ctx = context.subspan(context.size() - k, k);
    auto it = tables_[k].find(context_key(ctx));
    if (it == tables_[k].end()) continue;  // unseen context: keep backoff
    const ContextStats& stats = it->second;
    // Witten-Bell-flavored interpolation weight: contexts with many distinct
    // continuations lean more on the backoff distribution.
    const double fanout = static_cast<double>(stats.counts.size());
    const double lambda = config_.alpha * fanout /
                          (static_cast<double>(stats.total) + config_.alpha * fanout);
    for (double& p : probs) p *= lambda;
    const double scale = (1.0 - lambda) / static_cast<double>(stats.total);
    for (const auto& [token, count] : stats.counts) {
      probs[token] += scale * static_cast<double>(count);
    }
  }

  std::vector<double> log_probs(V);
  for (std::size_t t = 0; t < V; ++t) {
    log_probs[t] = std::log(probs[t]);
  }
  return log_probs;
}

void NgramModel::save(std::ostream& out) const {
  out << "RELM_NGRAM v1\n";
  out << config_.order << ' ' << config_.alpha << ' '
      << config_.max_sequence_length << ' ' << vocab_size_ << ' ' << eos_
      << '\n';
  for (std::size_t k = 0; k < tables_.size(); ++k) {
    out << "table " << k << ' ' << tables_[k].size() << '\n';
    for (const auto& [key, stats] : tables_[k]) {
      out << std::hex << key << std::dec << ' ' << stats.total << ' '
          << stats.counts.size();
      for (const auto& [token, count] : stats.counts) {
        out << ' ' << token << ' ' << count;
      }
      out << '\n';
    }
  }
}

std::shared_ptr<NgramModel> NgramModel::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  if (magic != "RELM_NGRAM" || version != "v1") {
    throw relm::Error("not a RELM_NGRAM v1 model file");
  }
  auto model = std::shared_ptr<NgramModel>(new NgramModel());
  in >> model->config_.order >> model->config_.alpha >>
      model->config_.max_sequence_length >> model->vocab_size_ >> model->eos_;
  if (!in || model->config_.order == 0) {
    throw relm::Error("model file: corrupt header");
  }
  model->tables_.resize(model->config_.order);
  for (std::size_t k = 0; k < model->config_.order; ++k) {
    std::string tag;
    std::size_t index = 0, contexts = 0;
    in >> tag >> index >> contexts;
    if (!in || tag != "table" || index != k) {
      throw relm::Error("model file: corrupt table header");
    }
    model->tables_[k].reserve(contexts);
    for (std::size_t i = 0; i < contexts; ++i) {
      std::uint64_t key = 0;
      ContextStats stats;
      std::size_t entries = 0;
      in >> std::hex >> key >> std::dec >> stats.total >> entries;
      for (std::size_t e = 0; e < entries; ++e) {
        TokenId token = 0;
        std::uint32_t count = 0;
        in >> token >> count;
        stats.counts.emplace(token, count);
      }
      if (!in) throw relm::Error("model file: truncated");
      model->tables_[k].emplace(key, std::move(stats));
    }
  }
  return model;
}

void NgramModel::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw relm::Error("cannot open for writing: " + path);
  save(out);
}

std::shared_ptr<NgramModel> NgramModel::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw relm::Error("cannot open for reading: " + path);
  return load(in);
}

void NgramModel::visit_context_rows(
    const std::function<void(const ContextRowView&)>& fn) const {
  for (std::size_t k = 0; k < tables_.size(); ++k) {
    for (const auto& [key, stats] : tables_[k]) {
      fn(ContextRowView{k, key, stats.total, &stats.counts});
    }
  }
}

std::size_t NgramModel::num_contexts() const {
  std::size_t n = 0;
  for (const auto& table : tables_) n += table.size();
  return n;
}

std::vector<double> UniformModel::next_log_probs(std::span<const TokenId>) const {
  return std::vector<double>(vocab_size_,
                             -std::log(static_cast<double>(vocab_size_)));
}

// ---------------------------------------------------------------------------
// CachingModel: sharded LRU over relevant-suffix keys
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kCacheShards = 16;

// Process-wide cache metrics (docs/OBSERVABILITY.md). The per-shard counters
// below remain the per-instance attribution surface (SearchStats diffs
// cache_stats() snapshots against a baseline); the registry accumulates the
// same events across every CachingModel so --metrics and bench snapshots see
// global cache behaviour. "hits" counts evaluations saved, including batch
// dedup joins; "batch_dedup" counts the joins alone.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& batch_dedup;
  obs::Counter& inflight_dedup;
  obs::Gauge& entries;

  static CacheMetrics& get() {
    static CacheMetrics m{obs::Registry::instance().counter("model.cache.hits"),
                          obs::Registry::instance().counter("model.cache.misses"),
                          obs::Registry::instance().counter("model.cache.evictions"),
                          obs::Registry::instance().counter("model.cache.batch_dedup"),
                          obs::Registry::instance().counter("model.cache.inflight_dedup"),
                          obs::Registry::instance().gauge("model.cache.entries")};
    return m;
  }
};

}  // namespace

struct CachingModel::Shard {
  struct Entry {
    std::uint64_t hash;
    std::vector<TokenId> suffix;  // stored to rule out hash collisions
    // Shared so hits can hand the vector out without a vocab-sized copy;
    // eviction merely drops the cache's reference while readers keep theirs.
    std::shared_ptr<const std::vector<double>> log_probs;
  };

  mutable util::Mutex mutex{util::LockRank::kModelCacheShard};
  // Set once in the CachingModel constructor before any concurrent use, and
  // immutable afterwards — so not lock-guarded.
  std::size_t capacity = 0;  // this shard's entry budget
  // LRU list, front = most recently used; the index maps a suffix hash to
  // every live entry with that hash (collisions resolved by comparison).
  std::list<Entry> lru RELM_GUARDED_BY(mutex);
  std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
      index RELM_GUARDED_BY(mutex);
  std::size_t hits RELM_GUARDED_BY(mutex) = 0;
  std::size_t misses RELM_GUARDED_BY(mutex) = 0;
  std::size_t evictions RELM_GUARDED_BY(mutex) = 0;

  // Looks up `suffix`, refreshing recency. Returns null on miss. Counts the
  // hit/miss. The returned shared_ptr stays valid after `mutex` is released.
  std::shared_ptr<const std::vector<double>> find(std::uint64_t hash,
                                                  std::span<const TokenId> suffix)
      RELM_REQUIRES(mutex) {
    auto bucket = index.find(hash);
    if (bucket != index.end()) {
      for (auto entry_it : bucket->second) {
        if (entry_it->suffix.size() == suffix.size() &&
            std::equal(entry_it->suffix.begin(), entry_it->suffix.end(),
                       suffix.begin())) {
          ++hits;
          // Recency order only matters once eviction is plausible; below half
          // capacity the splice is pure overhead on the hit path.
          if (lru.size() * 2 >= capacity) lru.splice(lru.begin(), lru, entry_it);
          return entry_it->log_probs;
        }
      }
    }
    ++misses;
    return nullptr;
  }

  // Inserts unless an equal entry raced in meanwhile; evicts the LRU tail to
  // stay within capacity.
  void insert(std::uint64_t hash, std::span<const TokenId> suffix,
              std::shared_ptr<const std::vector<double>> log_probs)
      RELM_REQUIRES(mutex) {
    if (capacity == 0) return;
    auto bucket = index.find(hash);
    if (bucket != index.end()) {
      for (auto entry_it : bucket->second) {
        if (entry_it->suffix.size() == suffix.size() &&
            std::equal(entry_it->suffix.begin(), entry_it->suffix.end(),
                       suffix.begin())) {
          return;  // another thread filled it between our probe and now
        }
      }
    }
    while (lru.size() >= capacity) {
      const Entry& victim = lru.back();
      auto victim_bucket = index.find(victim.hash);
      auto& entries = victim_bucket->second;
      auto last = std::prev(lru.end());
      entries.erase(std::find(entries.begin(), entries.end(), last));
      if (entries.empty()) index.erase(victim_bucket);
      lru.pop_back();
      ++evictions;
      CacheMetrics::get().evictions.add();
      CacheMetrics::get().entries.add(-1.0);
    }
    lru.push_front(Entry{hash,
                         std::vector<TokenId>(suffix.begin(), suffix.end()),
                         std::move(log_probs)});
    index[hash].push_back(lru.begin());
    CacheMetrics::get().entries.add(1.0);
  }
};

// Dedup table for computations currently in flight: a thread that misses on
// a suffix another thread is already evaluating waits here instead of
// evaluating the model a second time. Keyed by suffix hash only — the
// full-suffix comparison happens at the shard on re-probe, so a hash
// collision costs a spurious wait, never a wrong result. Ranked BEFORE the
// cache shards (kModelCacheInflight < kModelCacheShard): the claim/erase
// sites never hold a shard lock, so the one legal nesting direction is
// inflight -> shard.
struct CachingModel::Inflight {
  mutable util::Mutex mutex{util::LockRank::kModelCacheInflight};
  util::CondVar done;
  std::unordered_set<std::uint64_t> pending RELM_GUARDED_BY(mutex);
};

CachingModel::CachingModel(std::shared_ptr<const LanguageModel> inner,
                           std::size_t capacity)
    : inner_(std::move(inner)),
      capacity_(capacity),
      shards_(std::make_unique<Shard[]>(kCacheShards)),
      inflight_(std::make_unique<Inflight>()) {
  // Distribute the entry budget so shard capacities sum exactly to
  // capacity_: the bound counts entries across the whole cache, not keys or
  // shards (a rounded-up per-shard quota would overshoot small capacities).
  for (std::size_t s = 0; s < kCacheShards; ++s) {
    shards_[s].capacity = capacity_ / kCacheShards +
                          (s < capacity_ % kCacheShards ? 1 : 0);
  }
}

CachingModel::~CachingModel() {
  // The entries gauge tracks live entries across every CachingModel; this
  // instance's entries disappear with it.
  CacheMetrics::get().entries.add(-static_cast<double>(entries()));
}

CachingModel::Shard& CachingModel::shard_for(std::uint64_t hash) const {
  // hash_tokens' per-step mixing leaves the high bits correlated for short
  // suffixes (nearby token ids cluster into a few shards), so run the value
  // through a full-avalanche finalizer (MurmurHash3 fmix64) before taking
  // shard bits. The raw hash still keys the in-shard bucket.
  std::uint64_t x = hash;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return shards_[x & (kCacheShards - 1)];
}

std::vector<double> CachingModel::next_log_probs(std::span<const TokenId> context) const {
  return *next_log_probs_shared(context);
}

std::shared_ptr<const std::vector<double>> CachingModel::next_log_probs_shared(
    std::span<const TokenId> context) const {
  const std::span<const TokenId> suffix = relevant_suffix(*inner_, context);
  const std::uint64_t hash = hash_tokens(suffix);
  Shard& shard = shard_for(hash);
  std::size_t waits = 0;
  for (;;) {
    {
      util::ScopedLock lock(shard.mutex);
      if (std::shared_ptr<const std::vector<double>> cached =
              shard.find(hash, suffix)) {
        // Each wait iteration probed once and counted a miss, but the
        // in-flight computation served this call without a model eval:
        // reclassify, mirroring the batch-dedup accounting.
        shard.misses -= waits;
        CacheMetrics::get().hits.add();
        return cached;
      }
    }
    util::ScopedLock lock(inflight_->mutex);
    if (inflight_->pending.insert(hash).second) break;  // we own the eval
    CacheMetrics::get().inflight_dedup.add();
    ++waits;
    while (inflight_->pending.count(hash) > 0) inflight_->done.wait(lock);
  }
  CacheMetrics::get().misses.add();
  std::shared_ptr<const std::vector<double>> lp;
  try {
    lp = std::make_shared<const std::vector<double>>(
        inner_->next_log_probs(suffix));
  } catch (...) {
    util::ScopedLock lock(inflight_->mutex);
    inflight_->pending.erase(hash);
    inflight_->done.notify_all();
    throw;
  }
  {
    util::ScopedLock lock(shard.mutex);
    shard.insert(hash, suffix, lp);
  }
  {
    util::ScopedLock lock(inflight_->mutex);
    inflight_->pending.erase(hash);
    inflight_->done.notify_all();
  }
  return lp;
}

std::vector<std::vector<double>> CachingModel::next_log_probs_batch(
    std::span<const std::vector<TokenId>> contexts) const {
  std::vector<std::vector<double>> out(contexts.size());

  // Probe phase: serve hits, dedup misses by suffix so each distinct context
  // is evaluated once per batch.
  struct Miss {
    std::uint64_t hash;
    std::vector<TokenId> suffix;
    std::vector<std::size_t> outputs;  // batch slots waiting on this suffix
  };
  std::vector<Miss> misses;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> miss_index;
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const std::span<const TokenId> suffix = relevant_suffix(*inner_, contexts[i]);
    const std::uint64_t hash = hash_tokens(suffix);
    Shard& shard = shard_for(hash);
    {
      util::ScopedLock lock(shard.mutex);
      if (std::shared_ptr<const std::vector<double>> cached =
              shard.find(hash, suffix)) {
        CacheMetrics::get().hits.add();
        out[i] = *cached;
        continue;
      }
    }
    auto& candidates = miss_index[hash];
    bool joined = false;
    for (std::size_t m : candidates) {
      if (misses[m].suffix.size() == suffix.size() &&
          std::equal(misses[m].suffix.begin(), misses[m].suffix.end(),
                     suffix.begin())) {
        misses[m].outputs.push_back(i);
        joined = true;
        // The probe above counted this slot as a miss, but it is served by
        // the batch's pending evaluation without an extra model call:
        // reclassify as a hit so hit rates reflect evaluations saved.
        util::ScopedLock lock(shard.mutex);
        --shard.misses;
        ++shard.hits;
        CacheMetrics::get().hits.add();
        CacheMetrics::get().batch_dedup.add();
        break;
      }
    }
    if (!joined) {
      CacheMetrics::get().misses.add();
      candidates.push_back(misses.size());
      misses.push_back(Miss{hash,
                            std::vector<TokenId>(suffix.begin(), suffix.end()),
                            {i}});
    }
  }

  if (misses.empty()) return out;

  // Evaluate the distinct missing suffixes in one (parallel) inner batch.
  std::vector<std::vector<TokenId>> eval_contexts;
  eval_contexts.reserve(misses.size());
  for (const Miss& m : misses) eval_contexts.push_back(m.suffix);
  std::vector<std::vector<double>> lps = inner_->next_log_probs_batch(eval_contexts);

  // Insert + scatter in input order.
  for (std::size_t m = 0; m < misses.size(); ++m) {
    Shard& shard = shard_for(misses[m].hash);
    auto lp = std::make_shared<const std::vector<double>>(std::move(lps[m]));
    {
      util::ScopedLock lock(shard.mutex);
      shard.insert(misses[m].hash, misses[m].suffix, lp);
    }
    for (std::size_t slot : misses[m].outputs) out[slot] = *lp;
  }
  return out;
}

std::optional<LanguageModel::CacheStats> CachingModel::cache_stats() const {
  CacheStats stats;
  for (std::size_t s = 0; s < kCacheShards; ++s) {
    const Shard& shard = shards_[s];
    util::ScopedLock lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.entries += shard.lru.size();
  }
  return stats;
}

std::size_t CachingModel::hits() const { return cache_stats()->hits; }
std::size_t CachingModel::misses() const { return cache_stats()->misses; }
std::size_t CachingModel::evictions() const { return cache_stats()->evictions; }
std::size_t CachingModel::entries() const { return cache_stats()->entries; }

}  // namespace relm::model
