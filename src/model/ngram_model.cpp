#include "model/ngram_model.hpp"

#include <cmath>
#include <fstream>
#include <iostream>

#include "util/errors.hpp"

namespace relm::model {

std::uint64_t NgramModel::context_key(std::span<const TokenId> ctx) {
  // 64-bit keys over short contexts make collisions (which would silently
  // merge two contexts' statistics) vanishingly unlikely at this scale.
  return hash_tokens(ctx);
}

std::shared_ptr<NgramModel> NgramModel::train(
    const tokenizer::BpeTokenizer& tok, const std::vector<std::string>& documents,
    const Config& config, const std::vector<std::string>& subword_prior_documents) {
  util::Pcg32 rng(config.encoding_seed);
  std::vector<std::vector<TokenId>> sequences;
  sequences.reserve(documents.size() + subword_prior_documents.size());
  for (const std::string& doc : documents) {
    if (config.non_canonical_document_rate > 0.0 &&
        rng.uniform() < config.non_canonical_document_rate) {
      sequences.push_back(
          tok.encode_random(doc, rng, config.non_canonical_step_prob));
    } else {
      sequences.push_back(tok.encode(doc));
    }
  }
  for (const std::string& doc : subword_prior_documents) {
    sequences.push_back(tok.encode_random(doc, rng, /*step_prob=*/0.5));
  }
  return train_on_tokens(tok.vocab_size(), tok.eos(), sequences, config);
}

std::shared_ptr<NgramModel> NgramModel::train_on_tokens(
    std::size_t vocab_size, TokenId eos,
    const std::vector<std::vector<TokenId>>& sequences, const Config& config) {
  if (config.order < 1) throw relm::Error("n-gram order must be >= 1");
  auto model = std::shared_ptr<NgramModel>(new NgramModel());
  model->config_ = config;
  model->vocab_size_ = vocab_size;
  model->eos_ = eos;
  model->tables_.resize(config.order);

  for (const auto& seq : sequences) {
    // EOS acts as both document start and end marker: the empty context plus
    // EOS-delimited boundaries give the model document-initial statistics.
    std::vector<TokenId> wrapped;
    wrapped.reserve(seq.size() + 2);
    wrapped.push_back(eos);
    wrapped.insert(wrapped.end(), seq.begin(), seq.end());
    wrapped.push_back(eos);
    model->count_sequence(wrapped);
  }
  return model;
}

void NgramModel::count_sequence(const std::vector<TokenId>& seq) {
  // Position i predicts seq[i] from the k tokens before it, for every
  // context length k < order. Position 0 (the leading EOS) is context only.
  for (std::size_t i = 1; i < seq.size(); ++i) {
    for (std::size_t k = 0; k < tables_.size(); ++k) {
      if (k > i) break;
      std::span<const TokenId> ctx(seq.data() + (i - k), k);
      ContextStats& stats = tables_[k][context_key(ctx)];
      ++stats.counts[seq[i]];
      ++stats.total;
    }
  }
}

std::vector<double> NgramModel::next_log_probs(std::span<const TokenId> context) const {
  const std::size_t V = vocab_size_;
  // Start from uniform and interpolate upward through the orders.
  std::vector<double> probs(V, 1.0 / static_cast<double>(V));

  // Generation is document-anchored: a context shorter than the window is
  // implicitly preceded by the document boundary (GPT-2's <|endoftext|>),
  // matching how training sequences are EOS-wrapped.
  std::vector<TokenId> anchored;
  if (context.size() + 1 < tables_.size()) {
    anchored.reserve(context.size() + 1);
    anchored.push_back(eos_);
    anchored.insert(anchored.end(), context.begin(), context.end());
    context = anchored;
  }

  const std::size_t max_k = std::min(context.size(), tables_.size() - 1);
  for (std::size_t k = 0; k <= max_k; ++k) {
    std::span<const TokenId> ctx = context.subspan(context.size() - k, k);
    auto it = tables_[k].find(context_key(ctx));
    if (it == tables_[k].end()) continue;  // unseen context: keep backoff
    const ContextStats& stats = it->second;
    // Witten-Bell-flavored interpolation weight: contexts with many distinct
    // continuations lean more on the backoff distribution.
    const double fanout = static_cast<double>(stats.counts.size());
    const double lambda = config_.alpha * fanout /
                          (static_cast<double>(stats.total) + config_.alpha * fanout);
    for (double& p : probs) p *= lambda;
    const double scale = (1.0 - lambda) / static_cast<double>(stats.total);
    for (const auto& [token, count] : stats.counts) {
      probs[token] += scale * static_cast<double>(count);
    }
  }

  std::vector<double> log_probs(V);
  for (std::size_t t = 0; t < V; ++t) {
    log_probs[t] = std::log(probs[t]);
  }
  return log_probs;
}

void NgramModel::save(std::ostream& out) const {
  out << "RELM_NGRAM v1\n";
  out << config_.order << ' ' << config_.alpha << ' '
      << config_.max_sequence_length << ' ' << vocab_size_ << ' ' << eos_
      << '\n';
  for (std::size_t k = 0; k < tables_.size(); ++k) {
    out << "table " << k << ' ' << tables_[k].size() << '\n';
    for (const auto& [key, stats] : tables_[k]) {
      out << std::hex << key << std::dec << ' ' << stats.total << ' '
          << stats.counts.size();
      for (const auto& [token, count] : stats.counts) {
        out << ' ' << token << ' ' << count;
      }
      out << '\n';
    }
  }
}

std::shared_ptr<NgramModel> NgramModel::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  if (magic != "RELM_NGRAM" || version != "v1") {
    throw relm::Error("not a RELM_NGRAM v1 model file");
  }
  auto model = std::shared_ptr<NgramModel>(new NgramModel());
  in >> model->config_.order >> model->config_.alpha >>
      model->config_.max_sequence_length >> model->vocab_size_ >> model->eos_;
  if (!in || model->config_.order == 0) {
    throw relm::Error("model file: corrupt header");
  }
  model->tables_.resize(model->config_.order);
  for (std::size_t k = 0; k < model->config_.order; ++k) {
    std::string tag;
    std::size_t index = 0, contexts = 0;
    in >> tag >> index >> contexts;
    if (!in || tag != "table" || index != k) {
      throw relm::Error("model file: corrupt table header");
    }
    model->tables_[k].reserve(contexts);
    for (std::size_t i = 0; i < contexts; ++i) {
      std::uint64_t key = 0;
      ContextStats stats;
      std::size_t entries = 0;
      in >> std::hex >> key >> std::dec >> stats.total >> entries;
      for (std::size_t e = 0; e < entries; ++e) {
        TokenId token = 0;
        std::uint32_t count = 0;
        in >> token >> count;
        stats.counts.emplace(token, count);
      }
      if (!in) throw relm::Error("model file: truncated");
      model->tables_[k].emplace(key, std::move(stats));
    }
  }
  return model;
}

void NgramModel::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw relm::Error("cannot open for writing: " + path);
  save(out);
}

std::shared_ptr<NgramModel> NgramModel::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw relm::Error("cannot open for reading: " + path);
  return load(in);
}

void NgramModel::visit_context_rows(
    const std::function<void(const ContextRowView&)>& fn) const {
  for (std::size_t k = 0; k < tables_.size(); ++k) {
    for (const auto& [key, stats] : tables_[k]) {
      fn(ContextRowView{k, key, stats.total, &stats.counts});
    }
  }
}

std::size_t NgramModel::num_contexts() const {
  std::size_t n = 0;
  for (const auto& table : tables_) n += table.size();
  return n;
}

std::vector<double> UniformModel::next_log_probs(std::span<const TokenId>) const {
  return std::vector<double>(vocab_size_,
                             -std::log(static_cast<double>(vocab_size_)));
}

CachingModel::CachingModel(std::shared_ptr<const LanguageModel> inner,
                           std::size_t capacity)
    : inner_(std::move(inner)), capacity_(capacity) {}

std::vector<double> CachingModel::next_log_probs(std::span<const TokenId> context) const {
  std::uint64_t key = hash_tokens(context);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    for (const auto& [ctx, lp] : it->second) {
      if (ctx.size() == context.size() &&
          std::equal(ctx.begin(), ctx.end(), context.begin())) {
        ++hits_;
        return lp;
      }
    }
  }
  ++misses_;
  std::vector<double> lp = inner_->next_log_probs(context);
  if (eviction_queue_.size() >= capacity_) {
    // FIFO eviction of whole buckets; crude but bounded.
    std::size_t evict = eviction_queue_.size() / 2;
    for (std::size_t i = 0; i < evict; ++i) cache_.erase(eviction_queue_[i]);
    eviction_queue_.erase(eviction_queue_.begin(),
                          eviction_queue_.begin() + static_cast<std::ptrdiff_t>(evict));
  }
  cache_[key].emplace_back(std::vector<TokenId>(context.begin(), context.end()), lp);
  eviction_queue_.push_back(key);
  return lp;
}

}  // namespace relm::model
