#include "model/decoding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/errors.hpp"

namespace relm::model {

std::vector<bool> allowed_tokens(std::span<const double> log_probs,
                                 const DecodingRules& rules) {
  const std::size_t V = log_probs.size();
  std::vector<bool> mask(V, true);

  std::vector<double> lp;
  std::span<const double> effective = log_probs;
  if (rules.temperature != 1.0) {
    lp = apply_temperature(log_probs, rules.temperature);
    effective = lp;
  }

  if (rules.top_k) {
    int k = *rules.top_k;
    if (k <= 0) throw relm::Error("top_k must be positive");
    if (static_cast<std::size_t>(k) < V) {
      std::vector<std::size_t> order(V);
      std::iota(order.begin(), order.end(), 0);
      std::nth_element(order.begin(), order.begin() + k, order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return effective[a] > effective[b];
                       });
      // Everything at rank >= k is cut. Ties at the boundary resolve by the
      // nth_element partition, matching the "keep exactly k" convention.
      std::fill(mask.begin(), mask.end(), false);
      for (int i = 0; i < k; ++i) mask[order[i]] = true;
    }
  }

  if (rules.top_p) {
    double p = *rules.top_p;
    if (p <= 0.0 || p > 1.0) throw relm::Error("top_p must be in (0, 1]");
    std::vector<std::size_t> order(V);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return effective[a] > effective[b];
    });
    double mass = 0.0;
    std::vector<bool> nucleus(V, false);
    for (std::size_t i = 0; i < V; ++i) {
      nucleus[order[i]] = true;
      mass += std::exp(effective[order[i]]);
      if (mass >= p) break;
    }
    for (std::size_t t = 0; t < V; ++t) {
      mask[t] = mask[t] && nucleus[t];
    }
  }

  return mask;
}

bool token_allowed(std::span<const double> log_probs, const DecodingRules& rules,
                   TokenId token) {
  if (rules.unrestricted()) return true;
  return allowed_tokens(log_probs, rules)[token];
}

std::vector<double> apply_temperature(std::span<const double> log_probs,
                                      double temperature) {
  if (temperature <= 0.0) throw relm::Error("temperature must be positive");
  const std::size_t V = log_probs.size();
  std::vector<double> out(V);
  double max_lp = -std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < V; ++t) {
    out[t] = log_probs[t] / temperature;
    max_lp = std::max(max_lp, out[t]);
  }
  double z = 0.0;
  for (double v : out) z += std::exp(v - max_lp);
  double log_z = max_lp + std::log(z);
  for (double& v : out) v -= log_z;
  return out;
}

TokenId sample_token(std::span<const double> log_probs,
                     const std::vector<bool>& mask, util::Pcg32& rng) {
  std::vector<double> weights(log_probs.size(), 0.0);
  for (std::size_t t = 0; t < log_probs.size(); ++t) {
    if (mask.empty() || mask[t]) weights[t] = std::exp(log_probs[t]);
  }
  std::size_t pick = rng.weighted(weights);
  return static_cast<TokenId>(pick);  // == vocab_size on zero mass
}

std::vector<TokenId> generate(const LanguageModel& model,
                              std::span<const TokenId> context,
                              std::size_t max_new_tokens,
                              const DecodingRules& rules, util::Pcg32& rng,
                              bool stop_at_eos) {
  std::vector<TokenId> running(context.begin(), context.end());
  std::vector<TokenId> fresh;
  for (std::size_t step = 0; step < max_new_tokens; ++step) {
    if (running.size() >= model.max_sequence_length()) break;
    std::vector<double> lp = model.next_log_probs(running);
    std::vector<bool> mask = allowed_tokens(lp, rules);
    TokenId t = sample_token(lp, mask, rng);
    if (t >= model.vocab_size()) break;  // degenerate distribution
    running.push_back(t);
    fresh.push_back(t);
    if (stop_at_eos && t == model.eos()) break;
  }
  return fresh;
}

}  // namespace relm::model
