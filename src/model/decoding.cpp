#include "model/decoding.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "util/errors.hpp"

namespace relm::model {

namespace {

// The shared rank order for decoding rules: u precedes t on higher
// probability, ties on lower token id. Both allowed_tokens and token_allowed
// use exactly this order, so the two always agree on set membership — even on
// distributions full of exact ties (uniform models), where an unspecified
// nth_element partition would make them diverge.
inline bool rank_before(std::span<const double> lp, std::size_t a,
                        std::size_t b) {
  return lp[a] > lp[b] || (lp[a] == lp[b] && a < b);
}

void validate_top_k(int k) {
  if (k <= 0) throw relm::Error("top_k must be positive");
}

void validate_top_p(double p) {
  if (p <= 0.0 || p > 1.0) throw relm::Error("top_p must be in (0, 1]");
}

}  // namespace

util::TokenBitset allowed_tokens(std::span<const double> log_probs,
                                 const DecodingRules& rules) {
  const std::size_t V = log_probs.size();
  util::TokenBitset mask(V, true);

  std::vector<double> lp;
  std::span<const double> effective = log_probs;
  if (rules.temperature != 1.0) {
    lp = apply_temperature(log_probs, rules.temperature);
    effective = lp;
  }

  if (rules.top_k) {
    int k = *rules.top_k;
    validate_top_k(k);
    if (static_cast<std::size_t>(k) < V) {
      std::vector<std::size_t> order(V);
      std::iota(order.begin(), order.end(), 0);
      std::nth_element(order.begin(), order.begin() + k, order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return rank_before(effective, a, b);
                       });
      // Everything at rank >= k is cut; the deterministic tie order above
      // makes "the first k" a well-defined set, not a partition accident.
      mask.reset_all();
      for (int i = 0; i < k; ++i) mask.set(order[i]);
    }
  }

  if (rules.top_p) {
    double p = *rules.top_p;
    validate_top_p(p);
    std::vector<std::size_t> order(V);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return rank_before(effective, a, b);
    });
    double mass = 0.0;
    util::TokenBitset nucleus(V, false);
    for (std::size_t i = 0; i < V; ++i) {
      nucleus.set(order[i]);
      mass += std::exp(effective[order[i]]);
      if (mass >= p) break;
    }
    mask.and_with(nucleus);
  }

  return mask;
}

void allowed_tokens_into(std::span<const double> log_probs,
                         const DecodingRules& rules, util::TokenBitset& mask,
                         std::vector<double>& scratch) {
  const std::size_t V = log_probs.size();
  if (!rules.top_k || rules.top_p || rules.temperature != 1.0 ||
      static_cast<std::size_t>(*rules.top_k) >= V) {
    mask = allowed_tokens(log_probs, rules);
    return;
  }
  const int k = *rules.top_k;
  validate_top_k(k);
  if (mask.size() != V) mask = util::TokenBitset(V, false);
  else mask.reset_all();

  // Partition copied values to find the k-th largest, then admit everything
  // strictly above it plus just enough ties in ascending token id — exactly
  // the first k of the rank_before order allowed_tokens uses.
  scratch.assign(log_probs.begin(), log_probs.end());
  std::nth_element(scratch.begin(), scratch.begin() + (k - 1), scratch.end(),
                   std::greater<double>());
  const double kth = scratch[static_cast<std::size_t>(k) - 1];
  std::size_t taken = 0;
  for (std::size_t t = 0; t < V; ++t) {
    if (log_probs[t] > kth) {
      mask.set(t);
      ++taken;
    }
  }
  for (std::size_t t = 0; t < V && taken < static_cast<std::size_t>(k); ++t) {
    if (log_probs[t] == kth) {
      mask.set(t);
      ++taken;
    }
  }
}

bool token_allowed(std::span<const double> log_probs, const DecodingRules& rules,
                   TokenId token) {
  if (rules.unrestricted()) return true;
  const std::size_t V = log_probs.size();
  const std::size_t t = token;

  // Temperature is a monotone transform (divide by T > 0, subtract a
  // constant normalizer), so the rank order — and with it the top-k set — is
  // decided on the raw log-probs; only the top-p mass needs the adjusted
  // distribution.
  if (rules.top_k) {
    int k = *rules.top_k;
    validate_top_k(k);
    if (static_cast<std::size_t>(k) < V) {
      std::size_t better = 0;
      for (std::size_t u = 0; u < V; ++u) {
        if (u != t && rank_before(log_probs, u, t)) ++better;
      }
      if (better >= static_cast<std::size_t>(k)) return false;
    }
  }

  if (rules.top_p) {
    double p = *rules.top_p;
    validate_top_p(p);
    // The nucleus admits a token iff the mass of strictly-better tokens is
    // below p. Mass is computed under the temperature-adjusted normalized
    // distribution with max-subtraction for stability — the same arithmetic
    // apply_temperature performs, without materializing the O(V) buffer.
    const double T = rules.temperature;
    if (T <= 0.0) throw relm::Error("temperature must be positive");
    double mass_before = 0.0;
    if (T != 1.0) {
      double max_e = -std::numeric_limits<double>::infinity();
      for (std::size_t u = 0; u < V; ++u) max_e = std::max(max_e, log_probs[u] / T);
      double z = 0.0;
      for (std::size_t u = 0; u < V; ++u) z += std::exp(log_probs[u] / T - max_e);
      const double log_z = max_e + std::log(z);
      for (std::size_t u = 0; u < V; ++u) {
        if (u != t && rank_before(log_probs, u, t)) {
          mass_before += std::exp(log_probs[u] / T - log_z);
        }
      }
    } else {
      for (std::size_t u = 0; u < V; ++u) {
        if (u != t && rank_before(log_probs, u, t)) {
          mass_before += std::exp(log_probs[u]);
        }
      }
    }
    if (mass_before >= p) return false;
  }

  return true;
}

std::vector<double> apply_temperature(std::span<const double> log_probs,
                                      double temperature) {
  if (temperature <= 0.0) throw relm::Error("temperature must be positive");
  const std::size_t V = log_probs.size();
  std::vector<double> out(V);
  double max_lp = -std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < V; ++t) {
    out[t] = log_probs[t] / temperature;
    max_lp = std::max(max_lp, out[t]);
  }
  double z = 0.0;
  for (double v : out) z += std::exp(v - max_lp);
  double log_z = max_lp + std::log(z);
  for (double& v : out) v -= log_z;
  return out;
}

TokenId sample_token(std::span<const double> log_probs,
                     const util::TokenBitset& mask, util::Pcg32& rng) {
  std::vector<double> weights(log_probs.size(), 0.0);
  for (std::size_t t = 0; t < log_probs.size(); ++t) {
    if (mask.empty() || mask[t]) weights[t] = std::exp(log_probs[t]);
  }
  std::size_t pick = rng.weighted(weights);
  return static_cast<TokenId>(pick);  // == vocab_size on zero mass
}

std::vector<TokenId> generate(const LanguageModel& model,
                              std::span<const TokenId> context,
                              std::size_t max_new_tokens,
                              const DecodingRules& rules, util::Pcg32& rng,
                              bool stop_at_eos) {
  std::vector<TokenId> running(context.begin(), context.end());
  std::vector<TokenId> fresh;
  for (std::size_t step = 0; step < max_new_tokens; ++step) {
    if (running.size() >= model.max_sequence_length()) break;
    std::vector<double> lp = model.next_log_probs(running);
    util::TokenBitset mask = allowed_tokens(lp, rules);
    TokenId t = sample_token(lp, mask, rng);
    if (t >= model.vocab_size()) break;  // degenerate distribution
    running.push_back(t);
    fresh.push_back(t);
    if (stop_at_eos && t == model.eos()) break;
  }
  return fresh;
}

}  // namespace relm::model
