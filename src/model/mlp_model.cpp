#include "model/mlp_model.hpp"

#include <cmath>

#include "util/errors.hpp"

namespace relm::model {

namespace {
// log-softmax in place over `logits`, numerically stable.
void log_softmax(std::vector<double>& logits) {
  double max_logit = logits[0];
  for (double v : logits) max_logit = std::max(max_logit, v);
  double z = 0.0;
  for (double v : logits) z += std::exp(v - max_logit);
  double log_z = max_logit + std::log(z);
  for (double& v : logits) v -= log_z;
}
}  // namespace

std::shared_ptr<MlpModel> MlpModel::train(const tokenizer::BpeTokenizer& tok,
                                          const std::vector<std::string>& documents,
                                          const Config& config) {
  std::vector<std::vector<TokenId>> sequences;
  sequences.reserve(documents.size());
  for (const std::string& doc : documents) sequences.push_back(tok.encode(doc));
  return train_on_tokens(tok.vocab_size(), tok.eos(), sequences, config);
}

std::shared_ptr<MlpModel> MlpModel::train_on_tokens(
    std::size_t vocab_size, TokenId eos,
    const std::vector<std::vector<TokenId>>& sequences, const Config& config) {
  if (config.context_size == 0) throw relm::Error("MLP context_size must be > 0");
  auto model = std::shared_ptr<MlpModel>(new MlpModel());
  model->config_ = config;
  model->vocab_size_ = vocab_size;
  model->eos_ = eos;

  const std::size_t V = vocab_size;
  const std::size_t E = config.embedding_dim;
  const std::size_t H = config.hidden_dim;
  const std::size_t I = config.context_size * E;

  util::Pcg32 rng(config.seed);
  auto init = [&](std::vector<double>& params, std::size_t n, double scale) {
    params.resize(n);
    for (double& p : params) p = (rng.uniform() * 2.0 - 1.0) * scale;
  };
  init(model->embedding_, V * E, 0.1);
  init(model->w1_, I * H, 1.0 / std::sqrt(static_cast<double>(I)));
  init(model->b1_, H, 0.0);
  init(model->w2_, H * V, 1.0 / std::sqrt(static_cast<double>(H)));
  init(model->b2_, V, 0.0);

  // Training examples: every position of every EOS-wrapped sequence.
  std::vector<std::pair<std::vector<TokenId>, TokenId>> examples;
  std::vector<TokenId> window(config.context_size);
  for (const auto& seq : sequences) {
    std::vector<TokenId> wrapped;
    wrapped.push_back(eos);
    wrapped.insert(wrapped.end(), seq.begin(), seq.end());
    wrapped.push_back(eos);
    for (std::size_t i = 1; i < wrapped.size(); ++i) {
      model->fill_window(std::span<const TokenId>(wrapped.data(), i), window);
      examples.emplace_back(window, wrapped[i]);
    }
  }
  if (examples.empty()) throw relm::Error("MLP training requires non-empty data");

  double lr = config.learning_rate;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(examples);
    double loss_sum = 0.0;
    for (const auto& [ctx, target] : examples) {
      std::vector<double> input, hidden;
      std::vector<double> lp = model->forward(ctx, input, hidden);
      loss_sum += -lp[target];
      model->sgd_step(ctx, target, lr);
    }
    model->epoch_losses_.push_back(loss_sum / static_cast<double>(examples.size()));
    lr *= config.learning_rate_decay;
  }
  return model;
}

void MlpModel::fill_window(std::span<const TokenId> context,
                           std::vector<TokenId>& window) const {
  const std::size_t C = config_.context_size;
  window.assign(C, eos_);  // left-pad with the document boundary
  std::size_t take = std::min(C, context.size());
  for (std::size_t i = 0; i < take; ++i) {
    window[C - take + i] = context[context.size() - take + i];
  }
}

std::vector<double> MlpModel::forward(const std::vector<TokenId>& window,
                                      std::vector<double>& input,
                                      std::vector<double>& hidden) const {
  const std::size_t E = config_.embedding_dim;
  const std::size_t H = config_.hidden_dim;
  const std::size_t C = config_.context_size;
  const std::size_t I = C * E;

  input.resize(I);
  for (std::size_t c = 0; c < C; ++c) {
    const double* emb = embedding_.data() + window[c] * E;
    for (std::size_t e = 0; e < E; ++e) input[c * E + e] = emb[e];
  }
  hidden.resize(H);
  for (std::size_t h = 0; h < H; ++h) {
    double acc = b1_[h];
    const double* col = w1_.data() + h;  // w1_ is I x H row-major
    for (std::size_t i = 0; i < I; ++i) acc += input[i] * col[i * H];
    hidden[h] = std::tanh(acc);
  }
  std::vector<double> logits(vocab_size_);
  for (std::size_t v = 0; v < vocab_size_; ++v) logits[v] = b2_[v];
  for (std::size_t h = 0; h < H; ++h) {
    const double* row = w2_.data() + h * vocab_size_;
    double hv = hidden[h];
    for (std::size_t v = 0; v < vocab_size_; ++v) logits[v] += hv * row[v];
  }
  log_softmax(logits);
  return logits;
}

void MlpModel::sgd_step(const std::vector<TokenId>& window, TokenId target,
                        double lr) {
  const std::size_t E = config_.embedding_dim;
  const std::size_t H = config_.hidden_dim;
  const std::size_t C = config_.context_size;
  const std::size_t I = C * E;
  const std::size_t V = vocab_size_;

  std::vector<double> input, hidden;
  std::vector<double> lp = forward(window, input, hidden);

  // d(loss)/d(logit_v) = softmax_v - [v == target]
  std::vector<double> dlogits(V);
  for (std::size_t v = 0; v < V; ++v) dlogits[v] = std::exp(lp[v]);
  dlogits[target] -= 1.0;

  // Hidden gradient, then update W2/b2.
  std::vector<double> dhidden(H, 0.0);
  for (std::size_t h = 0; h < H; ++h) {
    double* row = w2_.data() + h * V;
    double hv = hidden[h];
    double acc = 0.0;
    for (std::size_t v = 0; v < V; ++v) {
      acc += row[v] * dlogits[v];
      row[v] -= lr * hv * dlogits[v];
    }
    dhidden[h] = acc * (1.0 - hv * hv);  // through tanh
  }
  for (std::size_t v = 0; v < V; ++v) b2_[v] -= lr * dlogits[v];

  // Input gradient, then update W1/b1.
  std::vector<double> dinput(I, 0.0);
  for (std::size_t i = 0; i < I; ++i) {
    double* row = w1_.data() + i * H;
    double acc = 0.0;
    for (std::size_t h = 0; h < H; ++h) {
      acc += row[h] * dhidden[h];
      row[h] -= lr * input[i] * dhidden[h];
    }
    dinput[i] = acc;
  }
  for (std::size_t h = 0; h < H; ++h) b1_[h] -= lr * dhidden[h];

  // Embedding updates.
  for (std::size_t c = 0; c < C; ++c) {
    double* emb = embedding_.data() + window[c] * E;
    for (std::size_t e = 0; e < E; ++e) emb[e] -= lr * dinput[c * E + e];
  }
}

std::vector<double> MlpModel::next_log_probs(std::span<const TokenId> context) const {
  std::vector<TokenId> window;
  fill_window(context, window);
  std::vector<double> input, hidden;
  return forward(window, input, hidden);
}

double MlpModel::cross_entropy(
    const std::vector<std::vector<TokenId>>& sequences) const {
  double loss = 0.0;
  std::size_t count = 0;
  std::vector<TokenId> window;
  for (const auto& seq : sequences) {
    std::vector<TokenId> wrapped;
    wrapped.push_back(eos_);
    wrapped.insert(wrapped.end(), seq.begin(), seq.end());
    wrapped.push_back(eos_);
    for (std::size_t i = 1; i < wrapped.size(); ++i) {
      std::vector<double> lp =
          next_log_probs(std::span<const TokenId>(wrapped.data() + 1, i - 1));
      loss += -lp[wrapped[i]];
      ++count;
    }
  }
  return count ? loss / static_cast<double>(count) : 0.0;
}

}  // namespace relm::model
