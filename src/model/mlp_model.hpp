#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/language_model.hpp"
#include "util/rng.hpp"

namespace relm::model {

// A neural probabilistic language model (Bengio et al., 2003): fixed-window
// token embeddings -> tanh hidden layer -> softmax over the vocabulary,
// trained from scratch with SGD and manual backpropagation.
//
// This exists to demonstrate what the paper's conclusion calls extending
// ReLM "to other families of models": the query engine only sees the
// LanguageModel interface, so swapping the n-gram simulator for a neural
// model requires no engine changes (tests/test_mlp.cpp runs full ReLM
// queries against it). Unlike the n-gram, it generalizes: contexts never
// seen verbatim still produce structured predictions through the shared
// embedding space.
class MlpModel : public LanguageModel {
 public:
  struct Config {
    std::size_t context_size = 4;   // tokens of context (shorter = EOS-padded)
    std::size_t embedding_dim = 16;
    std::size_t hidden_dim = 32;
    std::size_t epochs = 3;
    double learning_rate = 0.08;
    double learning_rate_decay = 0.7;  // per epoch
    std::uint64_t seed = 13;
    std::size_t max_sequence_length = 96;
  };

  // Trains on documents (canonical encodings, EOS-wrapped like NgramModel).
  static std::shared_ptr<MlpModel> train(const tokenizer::BpeTokenizer& tok,
                                         const std::vector<std::string>& documents,
                                         const Config& config);

  static std::shared_ptr<MlpModel> train_on_tokens(
      std::size_t vocab_size, TokenId eos,
      const std::vector<std::vector<TokenId>>& sequences, const Config& config);

  std::size_t vocab_size() const override { return vocab_size_; }
  TokenId eos() const override { return eos_; }
  std::size_t max_sequence_length() const override {
    return config_.max_sequence_length;
  }
  std::vector<double> next_log_probs(std::span<const TokenId> context) const override;

  // The fixed input window: fill_window reads only the last context_size
  // tokens (EOS-padding shorter contexts), so older tokens cannot influence
  // the distribution.
  std::size_t relevant_context_length() const override {
    return config_.context_size;
  }

  // Mean cross-entropy (nats/token) over held-out sequences; the training
  // tests assert this improves across epochs.
  double cross_entropy(const std::vector<std::vector<TokenId>>& sequences) const;

  const Config& config() const { return config_; }
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

 private:
  MlpModel() = default;

  // Fills `window` with the last context_size tokens, EOS-padded on the left.
  void fill_window(std::span<const TokenId> context, std::vector<TokenId>& window) const;
  // Forward pass; returns log-probs and fills the hidden/input caches used
  // by backprop.
  std::vector<double> forward(const std::vector<TokenId>& window,
                              std::vector<double>& input,
                              std::vector<double>& hidden) const;
  void sgd_step(const std::vector<TokenId>& window, TokenId target, double lr);

  Config config_;
  std::size_t vocab_size_ = 0;
  TokenId eos_ = 0;

  // Parameters (row-major).
  std::vector<double> embedding_;  // V x E
  std::vector<double> w1_;         // (C*E) x H
  std::vector<double> b1_;         // H
  std::vector<double> w2_;         // H x V
  std::vector<double> b2_;         // V
  std::vector<double> epoch_losses_;
};

}  // namespace relm::model
