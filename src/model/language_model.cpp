#include "model/language_model.hpp"

namespace relm::model {

std::vector<std::vector<double>> LanguageModel::next_log_probs_batch(
    std::span<const std::vector<TokenId>> contexts) const {
  std::vector<std::vector<double>> out;
  out.reserve(contexts.size());
  for (const auto& context : contexts) out.push_back(next_log_probs(context));
  return out;
}

double LanguageModel::sequence_log_prob(std::span<const TokenId> context,
                                        std::span<const TokenId> continuation) const {
  std::vector<TokenId> running(context.begin(), context.end());
  double total = 0.0;
  for (TokenId t : continuation) {
    std::vector<double> lp = next_log_probs(running);
    total += lp[t];
    running.push_back(t);
  }
  return total;
}

std::uint64_t hash_tokens(std::span<const TokenId> tokens) {
  std::uint64_t h = 1469598103934665603ULL;
  for (TokenId t : tokens) {
    h ^= t;
    h *= 1099511628211ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace relm::model
