#include "model/language_model.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace relm::model {

namespace {

struct BatchMetrics {
  obs::Counter& evals;
  obs::Histogram& batch_size;

  static BatchMetrics& get() {
    static BatchMetrics m{
        obs::Registry::instance().counter("model.evals"),
        obs::Registry::instance().histogram(
            "model.batch.size", obs::Histogram::default_size_bounds())};
    return m;
  }
};

}  // namespace

std::vector<std::vector<double>> LanguageModel::next_log_probs_batch(
    std::span<const std::vector<TokenId>> contexts) const {
  BatchMetrics& metrics = BatchMetrics::get();
  metrics.evals.add(contexts.size());
  metrics.batch_size.observe(static_cast<double>(contexts.size()));
  std::vector<std::vector<double>> out(contexts.size());
  if (contexts.size() < 2) {
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      out[i] = next_log_probs(contexts[i]);
    }
    return out;
  }
  // Deterministic parallel map: whichever thread evaluates contexts[i], the
  // distribution lands in out[i], so the result is byte-identical for every
  // pool size (including 1).
  RELM_TRACE_SPAN("model.batch");
  util::ThreadPool::shared().parallel_for(
      contexts.size(), [&](std::size_t i) { out[i] = next_log_probs(contexts[i]); });
  return out;
}

std::shared_ptr<const std::vector<double>> LanguageModel::next_log_probs_shared(
    std::span<const TokenId> context) const {
  return std::make_shared<const std::vector<double>>(next_log_probs(context));
}

double LanguageModel::sequence_log_prob(std::span<const TokenId> context,
                                        std::span<const TokenId> continuation) const {
  std::vector<TokenId> running(context.begin(), context.end());
  double total = 0.0;
  for (TokenId t : continuation) {
    std::vector<double> lp = next_log_probs(running);
    total += lp[t];
    running.push_back(t);
  }
  return total;
}

std::uint64_t hash_tokens(std::span<const TokenId> tokens) {
  std::uint64_t h = 1469598103934665603ULL;
  for (TokenId t : tokens) {
    h ^= t;
    h *= 1099511628211ULL;
    h ^= h >> 29;
  }
  return h;
}

std::span<const TokenId> relevant_suffix(const LanguageModel& model,
                                         std::span<const TokenId> context) {
  const std::size_t relevant = model.relevant_context_length();
  if (relevant >= context.size()) return context;
  return context.subspan(context.size() - relevant, relevant);
}

}  // namespace relm::model
