#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/language_model.hpp"

namespace relm::model {

// Interpolated-backoff n-gram language model over BPE tokens.
//
// This is the repository's GPT-2 stand-in (see DESIGN.md). The estimator is
// additive-smoothed interpolation:
//
//   p_k(t | ctx_k) = (count(ctx_k, t) + alpha · p_{k-1}(t | ctx_{k-1}) · f(ctx_k))
//                    / (count(ctx_k) + alpha · f(ctx_k))
//
// recursing down to the uniform distribution at k = -1, with f(ctx) the
// number of distinct continuations (Witten-Bell flavored). High order + low
// alpha reproduces training spans nearly verbatim (memorization); low order +
// high alpha behaves like a small model that has "seen" patterns but cannot
// recite them — exactly the small-vs-XL contrast the paper's experiments
// exercise.
class NgramModel : public LanguageModel {
 public:
  struct Config {
    std::size_t order = 5;        // n in n-gram (context length = n-1)
    double alpha = 0.3;           // interpolation strength toward backoff
    std::size_t max_sequence_length = 96;

    // Fraction of training documents encoded with a randomized
    // (non-canonical) tokenization instead of the canonical one. Real LLMs
    // place probability mass on alternative encodings — the paper measures
    // 2-3% non-canonical unprompted samples from GPT-2 (§3.2) — and this is
    // how the simulator acquires that behaviour. 0 disables.
    double non_canonical_document_rate = 0.0;
    double non_canonical_step_prob = 0.5;
    std::uint64_t encoding_seed = 7;
  };

  // Trains on documents. Each document is tokenized with `tok` (canonical
  // encoding, or a randomized one for the configured fraction) and wrapped
  // in EOS boundaries, so the model learns both document-initial and
  // document-final statistics.
  //
  // `subword_prior_documents` are always encoded non-canonically (high
  // randomization). This is the n-gram stand-in for a neural model's
  // subword-prior generalization: GPT-2 spreads a word family's probability
  // across alternative segmentations at inference time (the §4.2.1 "trained
  // is 10x more likely non-canonically" observation); a count-based model
  // can only exhibit that if the counts contain those segmentations.
  static std::shared_ptr<NgramModel> train(
      const tokenizer::BpeTokenizer& tok,
      const std::vector<std::string>& documents, const Config& config,
      const std::vector<std::string>& subword_prior_documents = {});

  // Trains directly on token sequences (already encoded). Used by tests.
  static std::shared_ptr<NgramModel> train_on_tokens(
      std::size_t vocab_size, TokenId eos,
      const std::vector<std::vector<TokenId>>& sequences, const Config& config);

  std::size_t vocab_size() const override { return vocab_size_; }
  TokenId eos() const override { return eos_; }
  std::size_t max_sequence_length() const override {
    return config_.max_sequence_length;
  }
  std::vector<double> next_log_probs(std::span<const TokenId> context) const override;

  // An order-n model reads at most the last n-1 tokens: next_log_probs
  // interpolates tables of context length 0..n-1, and the EOS document
  // anchoring only triggers for contexts already shorter than n-1 (which
  // relevant_suffix leaves untouched). tests/test_model.cpp pins this
  // suffix equivalence.
  std::size_t relevant_context_length() const override {
    return config_.order - 1;
  }

  const Config& config() const { return config_; }
  std::size_t num_contexts() const;

  // Read-only view of one stored context row, for the relm::analysis
  // verification layer: context length `order_k`, the row's hashed key, the
  // stored continuation total, and the per-token counts. `counts` points
  // into the model and is valid only during the visit.
  struct ContextRowView {
    std::size_t order_k;
    std::uint64_t key;
    std::uint64_t total;
    const std::unordered_map<TokenId, std::uint32_t>* counts;
  };

  // Calls `fn` for every stored context row (all orders). Rows within an
  // order are visited in unspecified (hash-map) order.
  void visit_context_rows(
      const std::function<void(const ContextRowView&)>& fn) const;

  // Text serialization (see tools/relm_cli): counts are stored per context
  // hash. Format:
  //   RELM_NGRAM v1
  //   <order> <alpha> <max_seq_len> <vocab_size> <eos>
  //   per order k: "table <k> <num_contexts>" then one line per context:
  //   "<key_hex> <total> <n> (<token> <count>)*n"
  void save(std::ostream& out) const;
  static std::shared_ptr<NgramModel> load(std::istream& in);
  void save_file(const std::string& path) const;
  static std::shared_ptr<NgramModel> load_file(const std::string& path);

 private:
  NgramModel() = default;

  struct ContextStats {
    std::unordered_map<TokenId, std::uint32_t> counts;
    std::uint64_t total = 0;
  };

  static std::uint64_t context_key(std::span<const TokenId> ctx);

  void count_sequence(const std::vector<TokenId>& seq);

  // tables_[k]: statistics for contexts of length k (k = 0 is the unigram
  // table with the single empty context).
  std::vector<std::unordered_map<std::uint64_t, ContextStats>> tables_;
  Config config_;
  std::size_t vocab_size_ = 0;
  TokenId eos_ = 0;
};

// Uniform model: every token equally likely. Used by tests to isolate
// automaton behaviour from model behaviour.
class UniformModel : public LanguageModel {
 public:
  UniformModel(std::size_t vocab_size, TokenId eos, std::size_t max_len = 64)
      : vocab_size_(vocab_size), eos_(eos), max_len_(max_len) {}
  std::size_t vocab_size() const override { return vocab_size_; }
  TokenId eos() const override { return eos_; }
  std::size_t max_sequence_length() const override { return max_len_; }
  std::vector<double> next_log_probs(std::span<const TokenId> context) const override;
  std::size_t relevant_context_length() const override { return 0; }

 private:
  std::size_t vocab_size_;
  TokenId eos_;
  std::size_t max_len_;
};

// Bounded memoization wrapper. ReLM's traversals re-evaluate the same
// contexts frequently (every random-traversal sample re-walks the prefix;
// Dijkstra siblings share parents), which in the paper is hidden by GPU
// batching; here a cache fills the same role.
//
// Entries are keyed on the inner model's *relevant suffix* (see
// LanguageModel::relevant_context_length): for an order-n n-gram, two
// distinct traversal paths ending in the same n-1 tokens share one cache
// entry — full-path keys would make almost every lookup a miss. Eviction is
// true LRU over a sharded table (one mutex per shard), safe under the
// parallel next_log_probs_batch path; the capacity bounds *entries* across
// all shards, never exceeded regardless of hash collisions.
class CachingModel : public LanguageModel {
 public:
  CachingModel(std::shared_ptr<const LanguageModel> inner, std::size_t capacity = 1 << 16);
  ~CachingModel() override;

  std::size_t vocab_size() const override { return inner_->vocab_size(); }
  TokenId eos() const override { return inner_->eos(); }
  std::size_t max_sequence_length() const override {
    return inner_->max_sequence_length();
  }
  std::size_t relevant_context_length() const override {
    return inner_->relevant_context_length();
  }
  std::vector<double> next_log_probs(std::span<const TokenId> context) const override;

  // Zero-copy hit path: returns the cached vector itself. Misses are
  // deduplicated across concurrent callers through an in-flight table — when
  // two threads miss on the same suffix simultaneously (speculative executor
  // batches in flight), one computes and the other waits and re-probes
  // instead of evaluating the model twice (model.cache.inflight_dedup).
  std::shared_ptr<const std::vector<double>> next_log_probs_shared(
      std::span<const TokenId> context) const override;

  // Probes the cache for every context, batch-evaluates the distinct missing
  // suffixes through the inner model (one parallel batch), and fills results
  // in input order. Duplicate suffixes within a batch are evaluated once.
  std::vector<std::vector<double>> next_log_probs_batch(
      std::span<const std::vector<TokenId>> contexts) const override;

  std::optional<CacheStats> cache_stats() const override;

  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t evictions() const;
  std::size_t entries() const;  // current entry count, <= capacity()
  std::size_t capacity() const { return capacity_; }

 private:
  struct Shard;
  struct Inflight;

  Shard& shard_for(std::uint64_t hash) const;

  std::shared_ptr<const LanguageModel> inner_;
  std::size_t capacity_;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<Inflight> inflight_;
};

}  // namespace relm::model
