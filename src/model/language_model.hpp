#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "tokenizer/bpe.hpp"

namespace relm::model {

using tokenizer::TokenId;

// Abstract autoregressive language model: p(x_i | x_1..x_{i-1}) over a token
// vocabulary (§2.4). ReLM's engine only ever talks to this interface — the
// paper's GPT-2 fills this slot in the original system; here an n-gram
// simulator does (see DESIGN.md substitution table), and a llama.cpp-style
// backend could implement it without touching the engine.
class LanguageModel {
 public:
  // relevant_context_length() value meaning "the whole context matters".
  static constexpr std::size_t kUnboundedContext = SIZE_MAX;

  // Cache telemetry exposed by memoizing wrappers (CachingModel). Plain
  // models report nothing; traversals surface the deltas in SearchStats.
  struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;  // current size, not cumulative
  };

  virtual ~LanguageModel() = default;

  virtual std::size_t vocab_size() const = 0;
  virtual TokenId eos() const = 0;

  // The model's context window; traversals unroll cycles up to this bound
  // (§3.3: "LLMs have finite state").
  virtual std::size_t max_sequence_length() const = 0;

  // Natural-log probabilities of every next token given the context. The
  // returned vector has vocab_size() entries and logsumexp == 0.
  //
  // Must be safe to call concurrently from multiple threads: the default
  // next_log_probs_batch fans contexts out across the shared thread pool.
  // A model with non-const evaluation state must either synchronize here or
  // override next_log_probs_batch with a serial loop.
  virtual std::vector<double> next_log_probs(std::span<const TokenId> context) const = 0;

  // Number of trailing context tokens that can influence next_log_probs:
  // for every context c longer than this bound,
  //   next_log_probs(c) == next_log_probs(last relevant_context_length()
  //   tokens of c).
  // An n-gram model of order n depends on at most n-1 tokens; a fixed-window
  // neural model on its window. kUnboundedContext (the default) promises
  // nothing, and callers must pass full contexts. CachingModel keys and
  // evaluates on this suffix, which is what gives the cache structural hit
  // rates (distinct traversal paths share suffixes); ShortestPathSearch uses
  // it to avoid rebuilding full root-to-node paths per expansion.
  virtual std::size_t relevant_context_length() const { return kUnboundedContext; }

  // Shared-ownership variant of next_log_probs for callers that only read
  // the distribution: a memoizing wrapper (CachingModel) serves cache hits
  // as a pointer to the cached vector itself, eliminating the vocab-sized
  // copy per call that dominates hit cost. The returned vector is immutable
  // and safe to hold across further model calls (eviction only drops the
  // cache's reference). The default wraps next_log_probs.
  virtual std::shared_ptr<const std::vector<double>> next_log_probs_shared(
      std::span<const TokenId> context) const;

  // Batched evaluation: one distribution per context. The paper's Executor
  // "schedules massive sets of test vectors on accelerators" (§3.3); this is
  // the seam a GPU-backed implementation overrides. The default fans the
  // contexts out across util::ThreadPool::shared() and is deterministic:
  // results come back in input order with values independent of thread count
  // or scheduling (slot i always holds next_log_probs(contexts[i])).
  virtual std::vector<std::vector<double>> next_log_probs_batch(
      std::span<const std::vector<TokenId>> contexts) const;

  // Cache telemetry, if this model memoizes (CachingModel). Cumulative over
  // the model's lifetime; callers diff snapshots to attribute work.
  virtual std::optional<CacheStats> cache_stats() const { return std::nullopt; }

  // Total log probability of `continuation` given `context`, chaining
  // next_log_probs. Non-virtual convenience.
  double sequence_log_prob(std::span<const TokenId> context,
                           std::span<const TokenId> continuation) const;
};

// Order-sensitive 64-bit hash of a token sequence (FNV-1a with mixing).
// Shared by the n-gram context tables and the logit cache.
std::uint64_t hash_tokens(std::span<const TokenId> tokens);

// The trailing slice of `context` that can influence `model`'s next-token
// distribution: the last relevant_context_length() tokens, or all of them
// when the context is shorter (or the model's dependence is unbounded).
std::span<const TokenId> relevant_suffix(const LanguageModel& model,
                                         std::span<const TokenId> context);

}  // namespace relm::model
