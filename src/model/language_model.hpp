#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tokenizer/bpe.hpp"

namespace relm::model {

using tokenizer::TokenId;

// Abstract autoregressive language model: p(x_i | x_1..x_{i-1}) over a token
// vocabulary (§2.4). ReLM's engine only ever talks to this interface — the
// paper's GPT-2 fills this slot in the original system; here an n-gram
// simulator does (see DESIGN.md substitution table), and a llama.cpp-style
// backend could implement it without touching the engine.
class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  virtual std::size_t vocab_size() const = 0;
  virtual TokenId eos() const = 0;

  // The model's context window; traversals unroll cycles up to this bound
  // (§3.3: "LLMs have finite state").
  virtual std::size_t max_sequence_length() const = 0;

  // Natural-log probabilities of every next token given the context. The
  // returned vector has vocab_size() entries and logsumexp == 0.
  virtual std::vector<double> next_log_probs(std::span<const TokenId> context) const = 0;

  // Batched evaluation: one distribution per context. The paper's Executor
  // "schedules massive sets of test vectors on accelerators" (§3.3); this is
  // the seam a GPU-backed implementation overrides. The default evaluates
  // sequentially, preserving semantics on CPU-only backends.
  virtual std::vector<std::vector<double>> next_log_probs_batch(
      std::span<const std::vector<TokenId>> contexts) const;

  // Total log probability of `continuation` given `context`, chaining
  // next_log_probs. Non-virtual convenience.
  double sequence_log_prob(std::span<const TokenId> context,
                           std::span<const TokenId> continuation) const;
};

// Order-sensitive 64-bit hash of a token sequence (FNV-1a with mixing).
// Shared by the n-gram context tables and the logit cache.
std::uint64_t hash_tokens(std::span<const TokenId> tokens);

}  // namespace relm::model
