#pragma once

#include <optional>
#include <span>
#include <vector>

#include "model/language_model.hpp"
#include "util/rng.hpp"
#include "util/token_bitset.hpp"

namespace relm::model {

// Decoding/decision rules (§2.4): the rule that converts next-token
// probabilities into the set of tokens the model "can emit". A token outside
// the allowed set is rejected, and — the key executor property (§3.3) — every
// string sharing the rejected prefix is transitively rejected with it.
struct DecodingRules {
  std::optional<int> top_k;      // keep only the k most likely tokens
  std::optional<double> top_p;   // nucleus: smallest set with mass >= p
  double temperature = 1.0;      // applied before top_p mass computation

  bool unrestricted() const { return !top_k && !top_p; }
};

// Mask of tokens admitted by the rules given full-vocabulary natural-log
// probabilities. With no rules set, everything with p > 0 is allowed — the
// paper's "vacuous" decision rule where nearly every string is in the
// language. Returned as a dense word-addressable bitset so the executors can
// intersect it with the compiled per-state token masks word-wise (the
// mask-and-scan fast path).
//
// Rank ties resolve by a fixed total order — token u precedes token t iff
// lp_u > lp_t, or lp_u == lp_t and u < t — so the admitted set is a pure
// function of the distribution, shared exactly with token_allowed().
util::TokenBitset allowed_tokens(std::span<const double> log_probs,
                                 const DecodingRules& rules);

// Scratch-reusing equivalent of allowed_tokens for hot per-expansion loops
// (the async pipeline computes one mask per settled node). Produces a mask
// bit-identical to allowed_tokens — same tie order — but for the common
// top-k-only / temperature-1 rule it selects on values directly (one
// nth_element over a reused double buffer plus a threshold scan) instead of
// permuting an index vector, and it writes into a caller-owned bitset so the
// O(vocab) allocations amortize away. Falls back to allowed_tokens for any
// other rule combination.
void allowed_tokens_into(std::span<const double> log_probs,
                         const DecodingRules& rules, util::TokenBitset& mask,
                         std::vector<double>& scratch);

// True iff `token` survives the rules: a single-membership test in O(vocab)
// time with NO allocation — it never materializes the full mask (the oracle
// calls this once per token per step; building the mask each time made that
// O(vocab log vocab) with three temporaries per call). Agrees with
// allowed_tokens()[token] via the shared tie-break order above.
bool token_allowed(std::span<const double> log_probs, const DecodingRules& rules,
                   TokenId token);

// Applies temperature to log-probs and renormalizes.
std::vector<double> apply_temperature(std::span<const double> log_probs,
                                      double temperature);

// Samples a token from the distribution restricted to `mask` (renormalized).
// An empty (default-constructed) bitset means "no restriction". Returns
// vocab_size if the masked distribution has zero mass.
TokenId sample_token(std::span<const double> log_probs,
                     const util::TokenBitset& mask, util::Pcg32& rng);

// Free-running generation: extends `context` by up to `max_new_tokens`
// tokens sampled under the rules, stopping early on EOS. Returns only the
// newly generated tokens. This is the HuggingFace run_generation-style
// loop that the paper's baselines use (§4.1).
std::vector<TokenId> generate(const LanguageModel& model,
                              std::span<const TokenId> context,
                              std::size_t max_new_tokens,
                              const DecodingRules& rules, util::Pcg32& rng,
                              bool stop_at_eos = true);

}  // namespace relm::model
