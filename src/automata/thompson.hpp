#pragma once

#include "automata/automaton.hpp"
#include "automata/regex_ast.hpp"

namespace relm::automata {

// Thompson construction: regex AST -> epsilon-NFA over the byte alphabet.
// Bounded repetitions r{m,n} are expanded structurally (m mandatory copies
// followed by n-m optional ones), matching the textbook treatment the paper
// cites (Hopcroft et al., 2007).
Nfa thompson_construct(const RegexNode& root);

}  // namespace relm::automata
