#include "automata/io.hpp"

#include <cstdio>

namespace relm::automata {

std::string to_dot(const Dfa& dfa,
                   const std::function<std::string(Symbol)>& symbol_name) {
  std::string out = "digraph automaton {\n  rankdir=LR;\n";
  out += "  node [shape=circle];\n";
  out += "  __start [shape=point];\n";
  out += "  __start -> s" + std::to_string(dfa.start()) + ";\n";
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    if (dfa.is_final(s)) {
      out += "  s" + std::to_string(s) + " [shape=doublecircle];\n";
    }
  }
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    for (const Edge& e : dfa.edges(s)) {
      out += "  s" + std::to_string(s) + " -> s" + std::to_string(e.to) +
             " [label=\"" + symbol_name(e.symbol) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string byte_symbol_name(Symbol s) {
  if (s == ' ') return "Ġ";  // the Ġ convention from the paper's figures
  if (s >= 0x21 && s <= 0x7e) {
    char c = static_cast<char>(s);
    if (c == '"' || c == '\\') return std::string("\\") + c;
    return std::string(1, c);
  }
  char buf[8];
  std::snprintf(buf, sizeof(buf), "\\x%02x", s);
  return buf;
}

}  // namespace relm::automata
