#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "automata/automaton.hpp"
#include "automata/regex_ast.hpp"

namespace relm::automata {

// Finite-state transducers (Mohri, 1997; Pereira & Riley, 1996) — the §2.3
// machinery the paper phrases its preprocessors and token compilation in.
// Each edge reads an input symbol and writes an output symbol; kEpsilon on
// either side reads/writes nothing. Weights are tropical (added along a
// path); the library's current users are boolean (weight 0), but the field
// keeps the door open for weighted rewrites.
//
// The preprocessors in core/preprocessors.cpp are direct DFA constructions
// for speed; the constructors below express the same rewrites as honest
// transducer compositions, and the test suite proves the two routes
// equivalent (tests/test_transducer.cpp) — each implementation checks the
// other.
struct FstEdge {
  Symbol in;    // consumed input symbol, or kEpsilon
  Symbol out;   // emitted output symbol, or kEpsilon
  StateId to;
  double weight = 0.0;
};

class Fst {
 public:
  explicit Fst(Symbol num_symbols) : num_symbols_(num_symbols) {}

  StateId add_state(bool is_final = false) {
    edges_.emplace_back();
    final_.push_back(is_final);
    return static_cast<StateId>(edges_.size() - 1);
  }
  void add_edge(StateId from, Symbol in, Symbol out, StateId to,
                double weight = 0.0) {
    edges_[from].push_back(FstEdge{in, out, to, weight});
  }
  void set_start(StateId s) { start_ = s; }
  void set_final(StateId s, bool is_final = true) { final_[s] = is_final; }

  StateId start() const { return start_; }
  bool is_final(StateId s) const { return final_[s]; }
  std::size_t num_states() const { return edges_.size(); }
  Symbol num_symbols() const { return num_symbols_; }
  std::span<const FstEdge> edges(StateId s) const { return edges_[s]; }

  // Identity transducer of a language: maps every string in L to itself.
  static Fst identity(const Dfa& language);

 private:
  std::vector<std::vector<FstEdge>> edges_;
  std::vector<bool> final_;
  StateId start_ = 0;
  Symbol num_symbols_;
};

// Relation composition a ∘ b: (x, z) iff exists y with (x,y) ∈ a, (y,z) ∈ b.
// Epsilon-aware pair construction over reachable state pairs.
Fst compose(const Fst& a, const Fst& b);

// Range/domain of the relation as minimized DFAs.
Dfa output_projection(const Fst& t);
Dfa input_projection(const Fst& t);

// The image of `input` under `t`: output_projection(compose(identity(input), t)).
Dfa apply(const Fst& t, const Dfa& input);

// --- Useful transducers ------------------------------------------------------

// Levenshtein edit transducer: relates every string to every string within
// `max_edits` insertions/deletions/substitutions over `alphabet`.
// apply(edit_transducer(k, A), L) == levenshtein_expand(L, k, A).
Fst edit_transducer(int max_edits, const ByteSet& alphabet);

// Case-folding: relates each letter to both of its cases (other symbols to
// themselves). apply() of it reproduces CaseInsensitivePreprocessor.
Fst case_fold_transducer();

// Optional rewrite (Mihov & Schulz, 2019): occurrences of `from` may be
// replaced by `to`; everything else passes through. The paper uses exactly
// this notion for its shortcut-edge construction ("the sequence T-h-e is
// optionally rewritten to The") and for synonym-style preprocessors.
Fst replace_transducer(std::string_view from, std::string_view to,
                       const ByteSet& passthrough);

}  // namespace relm::automata
