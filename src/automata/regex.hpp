#pragma once

#include <string_view>

#include "automata/automaton.hpp"

namespace relm::automata {

// One-call pipeline: parse -> Thompson -> determinize -> minimize.
// This is the "Natural Language Automaton" of §3.1: a minimal byte-level DFA
// equivalent to the regular expression. Throws relm::RegexError on parse
// failure.
Dfa compile_regex(std::string_view pattern);

// As above but without minimization (useful when the caller will immediately
// compose further and minimize once at the end).
Dfa compile_regex_unminimized(std::string_view pattern);

}  // namespace relm::automata
