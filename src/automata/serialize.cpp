#include "automata/serialize.hpp"

#include <fstream>
#include <string>

#include "util/errors.hpp"

namespace relm::automata {

void save_dfa(const Dfa& dfa, std::ostream& out) {
  out << "RELM_DFA v1\n";
  out << dfa.num_symbols() << ' ' << dfa.num_states() << ' ' << dfa.start()
      << ' ' << dfa.num_edges() << '\n';
  std::string finality(dfa.num_states(), '0');
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    if (dfa.is_final(s)) finality[s] = '1';
  }
  out << finality << '\n';
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    for (const Edge& e : dfa.edges(s)) {
      out << s << ' ' << e.symbol << ' ' << e.to << '\n';
    }
  }
}

Dfa load_dfa(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  if (!in) throw relm::Error("DFA file: truncated before header");
  if (magic != "RELM_DFA" || version != "v1") {
    throw relm::Error("not a RELM_DFA v1 file (got \"" + magic + " " + version +
                      "\")");
  }
  Symbol num_symbols = 0;
  std::size_t num_states = 0, num_edges = 0;
  StateId start = 0;
  in >> num_symbols >> num_states >> start >> num_edges;
  if (!in) throw relm::Error("DFA file: truncated header");
  if (num_states == 0) throw relm::Error("DFA file: zero states");
  if (num_symbols == 0) throw relm::Error("DFA file: empty alphabet");
  if (start >= num_states) {
    throw relm::Error("DFA file: start state " + std::to_string(start) +
                      " out of range (num_states " + std::to_string(num_states) +
                      ")");
  }
  // A deterministic machine has at most one edge per (state, symbol); an
  // edge count beyond that bound cannot describe a DFA and would otherwise
  // let a corrupt header demand an absurd read loop.
  if (num_edges > num_states * static_cast<std::size_t>(num_symbols)) {
    throw relm::Error("DFA file: edge count " + std::to_string(num_edges) +
                      " exceeds num_states * num_symbols");
  }
  std::string finality;
  in >> finality;
  if (!in || finality.size() != num_states) {
    throw relm::Error("DFA file: finality bits truncated or wrong length");
  }
  Dfa dfa(num_symbols);
  for (std::size_t s = 0; s < num_states; ++s) {
    char bit = finality[s];
    if (bit != '0' && bit != '1') {
      throw relm::Error("DFA file: finality bit for state " + std::to_string(s) +
                        " is not 0/1");
    }
    dfa.add_state(bit == '1');
  }
  dfa.set_start(start);
  for (std::size_t i = 0; i < num_edges; ++i) {
    StateId from = 0, to = 0;
    Symbol symbol = 0;
    in >> from >> symbol >> to;
    if (!in) {
      throw relm::Error("DFA file: truncated at edge " + std::to_string(i) +
                        " of " + std::to_string(num_edges));
    }
    if (from >= num_states || to >= num_states || symbol >= num_symbols) {
      throw relm::Error("DFA file: edge " + std::to_string(i) +
                        " out of range (" + std::to_string(from) + " " +
                        std::to_string(symbol) + " " + std::to_string(to) + ")");
    }
    dfa.add_edge(from, symbol, to);
  }
  return dfa;
}

void save_dfa_file(const Dfa& dfa, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw relm::Error("cannot open for writing: " + path);
  save_dfa(dfa, out);
}

Dfa load_dfa_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw relm::Error("cannot open for reading: " + path);
  return load_dfa(in);
}

namespace {

// FNV-1a with a 64-bit avalanche finalizer per field, so adjacent small
// integers do not produce near-collisions.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0x100000001b3ull;
  return h;
}

}  // namespace

std::uint64_t dfa_structural_hash(const Dfa& dfa) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = mix(h, dfa.num_symbols());
  h = mix(h, dfa.num_states());
  h = mix(h, dfa.start());
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    h = mix(h, dfa.is_final(s) ? 0x2bull : 0x2dull);
    for (const Edge& e : dfa.edges(s)) {
      h = mix(h, s);
      h = mix(h, e.symbol);
      h = mix(h, e.to);
    }
  }
  return h;
}

}  // namespace relm::automata
