#include "automata/serialize.hpp"

#include <fstream>
#include <string>

#include "util/errors.hpp"

namespace relm::automata {

void save_dfa(const Dfa& dfa, std::ostream& out) {
  out << "RELM_DFA v1\n";
  out << dfa.num_symbols() << ' ' << dfa.num_states() << ' ' << dfa.start()
      << ' ' << dfa.num_edges() << '\n';
  std::string finality(dfa.num_states(), '0');
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    if (dfa.is_final(s)) finality[s] = '1';
  }
  out << finality << '\n';
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    for (const Edge& e : dfa.edges(s)) {
      out << s << ' ' << e.symbol << ' ' << e.to << '\n';
    }
  }
}

Dfa load_dfa(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  if (magic != "RELM_DFA" || version != "v1") {
    throw relm::Error("not a RELM_DFA v1 file");
  }
  Symbol num_symbols = 0;
  std::size_t num_states = 0, num_edges = 0;
  StateId start = 0;
  in >> num_symbols >> num_states >> start >> num_edges;
  std::string finality;
  in >> finality;
  if (!in || finality.size() != num_states || start >= num_states ||
      num_states == 0) {
    throw relm::Error("DFA file: corrupt header");
  }
  Dfa dfa(num_symbols);
  for (std::size_t s = 0; s < num_states; ++s) dfa.add_state(finality[s] == '1');
  dfa.set_start(start);
  for (std::size_t i = 0; i < num_edges; ++i) {
    StateId from = 0, to = 0;
    Symbol symbol = 0;
    in >> from >> symbol >> to;
    if (!in || from >= num_states || to >= num_states || symbol >= num_symbols) {
      throw relm::Error("DFA file: corrupt edge");
    }
    dfa.add_edge(from, symbol, to);
  }
  return dfa;
}

void save_dfa_file(const Dfa& dfa, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw relm::Error("cannot open for writing: " + path);
  save_dfa(dfa, out);
}

Dfa load_dfa_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw relm::Error("cannot open for reading: " + path);
  return load_dfa(in);
}

}  // namespace relm::automata
