#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace relm::automata {

// Symbols are small unsigned integers. Character-level automata use the byte
// alphabet (num_symbols == 256); token-level automata use the BPE vocabulary
// as the alphabet. Keeping one representation for both is what lets ReLM's
// graph compiler reuse every automaton algorithm in token space (§3.2).
using Symbol = std::uint32_t;
using StateId = std::uint32_t;

inline constexpr StateId kNoState = 0xffffffffu;
inline constexpr Symbol kEpsilon = 0xffffffffu;

struct Edge {
  Symbol symbol;
  StateId to;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// Nondeterministic finite automaton with epsilon transitions. This is the
// intermediate form produced by Thompson construction and by operations that
// naturally produce nondeterminism (concatenation, union, Levenshtein
// expansion); `determinize()` converts it to a Dfa.
class Nfa {
 public:
  explicit Nfa(Symbol num_symbols) : num_symbols_(num_symbols) {}

  StateId add_state(bool is_final = false) {
    edges_.emplace_back();
    final_.push_back(is_final);
    return static_cast<StateId>(edges_.size() - 1);
  }

  void add_edge(StateId from, Symbol symbol, StateId to) {
    edges_[from].push_back(Edge{symbol, to});
  }

  void set_start(StateId s) { start_ = s; }
  void set_final(StateId s, bool is_final = true) { final_[s] = is_final; }

  StateId start() const { return start_; }
  bool is_final(StateId s) const { return final_[s]; }
  std::size_t num_states() const { return edges_.size(); }
  Symbol num_symbols() const { return num_symbols_; }
  std::span<const Edge> edges(StateId s) const { return edges_[s]; }

 private:
  std::vector<std::vector<Edge>> edges_;
  std::vector<bool> final_;
  StateId start_ = 0;
  Symbol num_symbols_;
};

// Deterministic finite automaton. Partial: a missing transition means the
// string is rejected (the implicit dead state). Edges per state are kept
// sorted by symbol so that `next()` is a binary search and iteration order is
// canonical.
class Dfa {
 public:
  explicit Dfa(Symbol num_symbols) : num_symbols_(num_symbols) {}

  StateId add_state(bool is_final = false) {
    edges_.emplace_back();
    final_.push_back(is_final);
    return static_cast<StateId>(edges_.size() - 1);
  }

  // Inserts an edge keeping per-state edges sorted. Overwrites an existing
  // edge on the same symbol (determinism is an invariant, not a check the
  // caller must perform).
  void add_edge(StateId from, Symbol symbol, StateId to);

  // Destination state for (from, symbol), or kNoState.
  StateId next(StateId from, Symbol symbol) const;

  void set_start(StateId s) { start_ = s; }
  void set_final(StateId s, bool is_final = true) { final_[s] = is_final; }

  StateId start() const { return start_; }
  bool is_final(StateId s) const { return final_[s]; }
  std::size_t num_states() const { return edges_.size(); }
  Symbol num_symbols() const { return num_symbols_; }
  std::span<const Edge> edges(StateId s) const { return edges_[s]; }

  std::size_t num_edges() const;

  // Runs the automaton on a symbol sequence from the start state.
  bool accepts(std::span<const Symbol> input) const;
  bool accepts_bytes(std::string_view input) const;  // requires byte alphabet

  // Structural equality (same numbering). Use `equivalent()` in ops.hpp for
  // language equality.
  friend bool operator==(const Dfa& a, const Dfa& b);

  // Builds a Dfa directly from raw parts with NO invariant enforcement: no
  // per-state sorting, no determinism overwrite, no range checks. This is
  // the deserialization/testing escape hatch — untrusted machines built this
  // way must pass analysis::check_dfa (src/analysis/invariants.hpp) before
  // use; `next()` on an unsorted or nondeterministic machine is meaningless.
  // `edge_lists.size()` and `final_states.size()` must agree.
  static Dfa from_parts(Symbol num_symbols, StateId start,
                        std::vector<std::vector<Edge>> edge_lists,
                        std::vector<bool> final_states);

 private:
  std::vector<std::vector<Edge>> edges_;
  std::vector<bool> final_;
  StateId start_ = 0;
  Symbol num_symbols_;
};

}  // namespace relm::automata
