#include "automata/grep.hpp"

#include <array>

#include "automata/determinize.hpp"
#include "util/errors.hpp"

namespace relm::automata {

std::vector<GrepMatch> grep_all(const Dfa& pattern, std::string_view text) {
  if (pattern.num_symbols() != 256) {
    throw relm::Error("grep_all requires a byte-alphabet automaton");
  }
  Dfa dfa = trim(pattern);
  std::vector<GrepMatch> matches;
  if (dfa.num_states() == 0) return matches;

  // Fast-skip table: bytes that can begin a match.
  // Zero-length matches are skipped by contract, so only bytes with an
  // outgoing start edge can begin a match.
  std::array<bool, 256> can_start{};
  for (const Edge& e : dfa.edges(dfa.start())) can_start[e.symbol] = true;

  std::size_t i = 0;
  while (i < text.size()) {
    if (!can_start[static_cast<unsigned char>(text[i])]) {
      ++i;
      continue;
    }
    // Run the DFA from position i, remembering the longest final hit.
    StateId state = dfa.start();
    std::size_t best_len = 0;
    for (std::size_t j = i; j < text.size(); ++j) {
      state = dfa.next(state, static_cast<unsigned char>(text[j]));
      if (state == kNoState) break;
      if (dfa.is_final(state)) best_len = j - i + 1;
    }
    if (best_len > 0) {
      matches.push_back(GrepMatch{i, best_len});
      i += best_len;  // non-overlapping
    } else {
      ++i;
    }
  }
  return matches;
}

std::vector<std::string> grep_strings(const Dfa& pattern, std::string_view text) {
  std::vector<std::string> out;
  for (const GrepMatch& m : grep_all(pattern, text)) {
    out.emplace_back(text.substr(m.offset, m.length));
  }
  return out;
}

}  // namespace relm::automata
