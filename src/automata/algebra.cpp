#include "automata/algebra.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <vector>

#include "automata/determinize.hpp"
#include "automata/ops.hpp"
#include "automata/thompson.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"

namespace relm::automata {
namespace {

// Cumulative state-budget accounting shared by every sub-construction of
// one compile_ast call.
struct BudgetMeter {
  std::size_t budget = 0;  // 0 = unlimited
  std::size_t used = 0;

  std::size_t remaining() const {
    if (budget == 0) return 0;  // "unlimited" in determinize() terms
    return budget > used ? budget - used : 1;
  }
  void charge(std::size_t states) {
    used += states;
    if (budget != 0 && used > budget) {
      throw relm::StateBudgetError(
          "boolean-algebra construction exceeded the determinization state "
          "budget",
          budget);
    }
  }
};

// Epsilon closure of a sorted/unsorted state list, returned sorted+deduped.
std::vector<StateId> closure_of(const Nfa& nfa, std::vector<StateId> states) {
  std::vector<bool> seen(nfa.num_states(), false);
  std::deque<StateId> work;
  for (StateId s : states) {
    if (!seen[s]) {
      seen[s] = true;
      work.push_back(s);
    }
  }
  std::vector<StateId> closure;
  while (!work.empty()) {
    StateId s = work.front();
    work.pop_front();
    closure.push_back(s);
    for (const Edge& e : nfa.edges(s)) {
      if (e.symbol == kEpsilon && !seen[e.to]) {
        seen[e.to] = true;
        work.push_back(e.to);
      }
    }
  }
  std::sort(closure.begin(), closure.end());
  return closure;
}

// The boolean expression tree over NFA leaves that one product construction
// evaluates. Nodes index into AlgebraCompiler::exprs_.
struct Expr {
  enum Kind { kLeaf, kAnd, kNot, kDiff };
  Kind kind;
  std::vector<int> children;  // kAnd: n, kNot: 1, kDiff: 2 (left, right)
  int leaf = -1;              // kLeaf: index into leaves_
};

class AlgebraCompiler {
 public:
  explicit AlgebraCompiler(const AlgebraOptions& options) : opts_(options) {
    meter_.budget = options.state_budget;
  }

  Dfa compile(const RegexNode& root) {
    if (!has_boolean_ops(root)) {
      Nfa nfa = thompson_construct(root);
      Dfa dfa = determinize(nfa, meter_.remaining());
      meter_.charge(dfa.num_states());
      return trim(dfa);
    }
    static obs::Counter& queries =
        obs::Registry::instance().counter("compile.algebra.queries");
    queries.add();
    if (is_boolean(root)) return compile_boolean(root);
    // Regular operators above boolean subtrees: build an NFA whose leaves
    // embed the boolean results, then determinize the whole thing.
    FragmentBuilder builder(*this);
    auto frag = builder.emit(root);
    Nfa nfa = builder.take(frag);
    Dfa dfa = determinize(nfa, meter_.remaining());
    meter_.charge(dfa.num_states());
    return trim(dfa);
  }

 private:
  static bool is_boolean(const RegexNode& node) {
    return node.kind == RegexKind::kIntersect ||
           node.kind == RegexKind::kComplement ||
           node.kind == RegexKind::kDifference;
  }

  // Thompson-style fragment construction that can additionally embed a
  // finished DFA (the result of a nested boolean product) as a leaf.
  class FragmentBuilder {
   public:
    explicit FragmentBuilder(AlgebraCompiler& owner)
        : owner_(owner), nfa_(256) {}

    struct Frag {
      StateId start;
      StateId accept;
    };

    Frag emit(const RegexNode& node) {
      if (AlgebraCompiler::is_boolean(node)) {
        return embed_dfa(owner_.compile_boolean(node));
      }
      switch (node.kind) {
        case RegexKind::kEmptySet:
          return fresh();
        case RegexKind::kEpsilon: {
          Frag f = fresh();
          nfa_.add_edge(f.start, kEpsilon, f.accept);
          return f;
        }
        case RegexKind::kCharClass: {
          Frag f = fresh();
          for (unsigned b = 0; b < 256; ++b) {
            if (node.char_class.test(b)) {
              nfa_.add_edge(f.start, static_cast<Symbol>(b), f.accept);
            }
          }
          return f;
        }
        case RegexKind::kConcat: {
          Frag whole = emit(*node.children.front());
          for (std::size_t i = 1; i < node.children.size(); ++i) {
            Frag next = emit(*node.children[i]);
            nfa_.add_edge(whole.accept, kEpsilon, next.start);
            whole.accept = next.accept;
          }
          return whole;
        }
        case RegexKind::kAlternate: {
          Frag f = fresh();
          for (const auto& child : node.children) {
            Frag branch = emit(*child);
            nfa_.add_edge(f.start, kEpsilon, branch.start);
            nfa_.add_edge(branch.accept, kEpsilon, f.accept);
          }
          return f;
        }
        case RegexKind::kRepeat:
          return emit_repeat(node);
        case RegexKind::kIntersect:
        case RegexKind::kComplement:
        case RegexKind::kDifference:
          break;  // handled above
      }
      throw relm::Error("unreachable: unknown regex node kind");
    }

    Nfa take(Frag root) {
      nfa_.set_start(root.start);
      nfa_.set_final(root.accept);
      return std::move(nfa_);
    }

   private:
    Frag fresh() {
      StateId s = nfa_.add_state();
      StateId a = nfa_.add_state();
      return Frag{s, a};
    }

    Frag embed_dfa(const Dfa& dfa) {
      Frag f = fresh();
      std::vector<StateId> remap(dfa.num_states());
      for (StateId s = 0; s < dfa.num_states(); ++s) {
        remap[s] = nfa_.add_state();
      }
      for (StateId s = 0; s < dfa.num_states(); ++s) {
        for (const Edge& e : dfa.edges(s)) {
          nfa_.add_edge(remap[s], e.symbol, remap[e.to]);
        }
        if (dfa.is_final(s)) nfa_.add_edge(remap[s], kEpsilon, f.accept);
      }
      nfa_.add_edge(f.start, kEpsilon, remap[dfa.start()]);
      return f;
    }

    Frag emit_repeat(const RegexNode& node) {
      const RegexNode& child = *node.children.front();
      int min = node.repeat_min;
      int max = node.repeat_max;
      if (min == 0 && max == kUnbounded) return emit_star(child);

      Frag whole{kNoState, kNoState};
      auto append = [&](Frag next) {
        if (whole.start == kNoState) {
          whole = next;
        } else {
          nfa_.add_edge(whole.accept, kEpsilon, next.start);
          whole.accept = next.accept;
        }
      };
      for (int i = 0; i < min; ++i) append(emit(child));
      if (max == kUnbounded) {
        append(emit_star(child));
      } else {
        for (int i = min; i < max; ++i) {
          Frag copy = emit(child);
          Frag opt = fresh();
          nfa_.add_edge(opt.start, kEpsilon, copy.start);
          nfa_.add_edge(copy.accept, kEpsilon, opt.accept);
          nfa_.add_edge(opt.start, kEpsilon, opt.accept);
          append(opt);
        }
      }
      if (whole.start == kNoState) {
        Frag f = fresh();
        nfa_.add_edge(f.start, kEpsilon, f.accept);
        return f;
      }
      return whole;
    }

    Frag emit_star(const RegexNode& child) {
      Frag inner = emit(child);
      Frag f = fresh();
      nfa_.add_edge(f.start, kEpsilon, inner.start);
      nfa_.add_edge(f.start, kEpsilon, f.accept);
      nfa_.add_edge(inner.accept, kEpsilon, inner.start);
      nfa_.add_edge(inner.accept, kEpsilon, f.accept);
      return f;
    }

    AlgebraCompiler& owner_;
    Nfa nfa_;
  };

  // Flattens a maximal boolean subtree into an expression over NFA leaves
  // and evaluates it with one product construction (lazy) or bottom-up with
  // the classic DFA ops (eager).
  Dfa compile_boolean(const RegexNode& node) {
    std::vector<Expr> exprs;
    std::vector<Nfa> leaves;
    int root = build_expr(node, exprs, leaves);
    if (opts_.lazy) return lazy_product(exprs, leaves, root);
    return eager_eval(exprs, leaves, root);
  }

  int build_expr(const RegexNode& node, std::vector<Expr>& exprs,
                 std::vector<Nfa>& leaves) {
    Expr e;
    switch (node.kind) {
      case RegexKind::kIntersect:
        e.kind = Expr::kAnd;
        break;
      case RegexKind::kComplement:
        e.kind = Expr::kNot;
        break;
      case RegexKind::kDifference:
        e.kind = Expr::kDiff;
        break;
      default: {
        // Maximal boolean-free subtree, or a regular operator with boolean
        // descendants: either way it becomes one NFA leaf (the fragment
        // builder recurses back into compile_boolean for nested products).
        e.kind = Expr::kLeaf;
        e.leaf = static_cast<int>(leaves.size());
        if (has_boolean_ops(node)) {
          FragmentBuilder builder(*this);
          auto frag = builder.emit(node);
          leaves.push_back(builder.take(frag));
        } else {
          leaves.push_back(thompson_construct(node));
        }
        exprs.push_back(std::move(e));
        return static_cast<int>(exprs.size() - 1);
      }
    }
    for (const auto& child : node.children) {
      e.children.push_back(build_expr(*child, exprs, leaves));
    }
    exprs.push_back(std::move(e));
    return static_cast<int>(exprs.size() - 1);
  }

  // --- lazy path ---------------------------------------------------------

  // A product state: one epsilon-closed subset per leaf. The empty subset
  // is a valid "dead" value — under complement a dead leaf is accepting.
  using Subset = std::vector<StateId>;
  using PState = std::vector<Subset>;

  Dfa lazy_product(const std::vector<Expr>& exprs,
                   const std::vector<Nfa>& leaves, int root) {
    RELM_TRACE_SPAN("automata.algebra.lazy_product");
    static obs::Counter& states = obs::Registry::instance().counter(
        "automata.algebra.lazy_states");

    Dfa out(256);
    std::map<PState, StateId> ids;
    std::deque<const PState*> work;

    auto accepts = [&](const PState& st) { return eval(exprs, leaves, root, st); };

    auto intern = [&](PState st) -> StateId {
      auto it = ids.find(st);
      if (it != ids.end()) return it->second;
      meter_.charge(1);
      states.add();
      StateId id = out.add_state(accepts(st));
      auto [pos, _] = ids.emplace(std::move(st), id);
      work.push_back(&pos->first);
      return id;
    };

    PState start;
    start.reserve(leaves.size());
    for (const Nfa& leaf : leaves) {
      start.push_back(closure_of(leaf, {leaf.start()}));
    }
    out.set_start(intern(std::move(start)));

    while (!work.empty()) {
      const PState& st = *work.front();
      work.pop_front();
      StateId from = ids.at(st);
      ByteSet syms = explore_symbols(exprs, leaves, root, st);
      for (unsigned b = 0; b < 256; ++b) {
        if (!syms.test(b)) continue;
        PState next;
        next.reserve(leaves.size());
        for (std::size_t i = 0; i < leaves.size(); ++i) {
          next.push_back(step(leaves[i], st[i], static_cast<Symbol>(b)));
        }
        // `st` may dangle after intern() rehashes nothing (std::map nodes
        // are stable), but `from` was captured before any insertion.
        StateId to = intern(std::move(next));
        out.add_edge(from, static_cast<Symbol>(b), to);
      }
    }
    return trim(out);
  }

  static Subset step(const Nfa& leaf, const Subset& subset, Symbol symbol) {
    std::vector<StateId> moved;
    for (StateId s : subset) {
      for (const Edge& e : leaf.edges(s)) {
        if (e.symbol == symbol) moved.push_back(e.to);
      }
    }
    if (moved.empty()) return {};
    return closure_of(leaf, std::move(moved));
  }

  bool eval(const std::vector<Expr>& exprs, const std::vector<Nfa>& leaves,
            int node, const PState& st) const {
    const Expr& e = exprs[node];
    switch (e.kind) {
      case Expr::kLeaf: {
        const Nfa& leaf = leaves[e.leaf];
        for (StateId s : st[e.leaf]) {
          if (leaf.is_final(s)) return true;
        }
        return false;
      }
      case Expr::kAnd:
        for (int c : e.children) {
          if (!eval(exprs, leaves, c, st)) return false;
        }
        return true;
      case Expr::kNot:
        return !eval(exprs, leaves, e.children[0], st);
      case Expr::kDiff:
        return eval(exprs, leaves, e.children[0], st) &&
               !eval(exprs, leaves, e.children[1], st);
    }
    throw relm::Error("unreachable: unknown algebra expr kind");
  }

  // The symbols worth exploring from a product state: anything outside this
  // set leads to a state from which the expression can never accept (or, for
  // complement, to strings outside universe^* which `~` excludes anyway).
  ByteSet explore_symbols(const std::vector<Expr>& exprs,
                          const std::vector<Nfa>& leaves, int node,
                          const PState& st) const {
    const Expr& e = exprs[node];
    switch (e.kind) {
      case Expr::kLeaf: {
        ByteSet out;
        const Nfa& leaf = leaves[e.leaf];
        for (StateId s : st[e.leaf]) {
          for (const Edge& edge : leaf.edges(s)) {
            if (edge.symbol != kEpsilon && edge.symbol < 256) {
              out.set(edge.symbol);
            }
          }
        }
        return out;
      }
      case Expr::kAnd: {
        ByteSet out = explore_symbols(exprs, leaves, e.children[0], st);
        for (std::size_t i = 1; i < e.children.size(); ++i) {
          out &= explore_symbols(exprs, leaves, e.children[i], st);
        }
        return out;
      }
      case Expr::kNot:
        return opts_.universe;
      case Expr::kDiff:
        // If the left side dies the difference rejects every extension, so
        // only its symbols matter; the right side is tracked along them.
        return explore_symbols(exprs, leaves, e.children[0], st);
    }
    throw relm::Error("unreachable: unknown algebra expr kind");
  }

  // --- eager path --------------------------------------------------------

  Dfa eager_eval(const std::vector<Expr>& exprs, const std::vector<Nfa>& leaves,
                 int node) {
    const Expr& e = exprs[node];
    switch (e.kind) {
      case Expr::kLeaf: {
        Dfa dfa = determinize(leaves[e.leaf], meter_.remaining());
        meter_.charge(dfa.num_states());
        return trim(dfa);
      }
      case Expr::kAnd: {
        Dfa acc = eager_eval(exprs, leaves, e.children[0]);
        for (std::size_t i = 1; i < e.children.size(); ++i) {
          acc = intersect(acc, eager_eval(exprs, leaves, e.children[i]));
          meter_.charge(acc.num_states());
        }
        return acc;
      }
      case Expr::kNot: {
        // `~` is universe-restricted: drop the child's non-universe edges
        // first so both modes agree that strings outside universe^* are
        // never in a complement.
        Dfa child = restrict_to(eager_eval(exprs, leaves, e.children[0]),
                                opts_.universe);
        Dfa result = complement(child, opts_.universe);
        meter_.charge(result.num_states());
        return result;
      }
      case Expr::kDiff: {
        // `-` is exact set difference: complement the right side over a
        // universe wide enough to cover every symbol either operand uses,
        // so no string of the left is lost to an incomplete complement.
        Dfa left = eager_eval(exprs, leaves, e.children[0]);
        Dfa right = eager_eval(exprs, leaves, e.children[1]);
        ByteSet wide = opts_.universe | edge_symbols(left) | edge_symbols(right);
        Dfa result = intersect(left, complement(right, wide));
        meter_.charge(result.num_states());
        return result;
      }
    }
    throw relm::Error("unreachable: unknown algebra expr kind");
  }

  static ByteSet edge_symbols(const Dfa& dfa) {
    ByteSet out;
    for (StateId s = 0; s < dfa.num_states(); ++s) {
      for (const Edge& e : dfa.edges(s)) {
        if (e.symbol < 256) out.set(e.symbol);
      }
    }
    return out;
  }

  static Dfa restrict_to(const Dfa& dfa, const ByteSet& universe) {
    Dfa out(dfa.num_symbols());
    for (StateId s = 0; s < dfa.num_states(); ++s) {
      out.add_state(dfa.is_final(s));
    }
    for (StateId s = 0; s < dfa.num_states(); ++s) {
      for (const Edge& e : dfa.edges(s)) {
        if (e.symbol < 256 && universe.test(e.symbol)) {
          out.add_edge(s, e.symbol, e.to);
        }
      }
    }
    out.set_start(dfa.start());
    return trim(out);
  }

  AlgebraOptions opts_;
  BudgetMeter meter_;
};

}  // namespace

ByteSet AlgebraOptions::kDefaultUniverse() { return printable_ascii_and_ws(); }

Dfa compile_ast(const RegexNode& root, const AlgebraOptions& options) {
  RELM_TRACE_SPAN("automata.algebra.compile");
  return AlgebraCompiler(options).compile(root);
}

std::size_t determinize_budget_from_env() {
  const char* value = std::getenv("RELM_DETERMINIZE_BUDGET");
  if (value == nullptr || *value == '\0') return kDefaultDeterminizeBudget;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return kDefaultDeterminizeBudget;
  return static_cast<std::size_t>(parsed);  // "0" = unlimited
}

bool lazy_determinize_from_env() {
  const char* value = std::getenv("RELM_DETERMINIZE_MODE");
  return value == nullptr || std::string_view(value) != "eager";
}

}  // namespace relm::automata
