#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "automata/automaton.hpp"
#include "automata/regex_ast.hpp"

namespace relm::automata {

// Language operations. All results are trim but not necessarily minimal;
// call minimize() when canonical form matters. Inputs must share an alphabet
// size.

// L(a) ∩ L(b): on-the-fly product construction over reachable pairs.
Dfa intersect(const Dfa& a, const Dfa& b);

// L(a) ∪ L(b).
Dfa union_of(const Dfa& a, const Dfa& b);

// Complement within `universe`^*: strings over the given symbol set not in
// L(a). The automaton is first completed with a dead state over `universe`.
Dfa complement(const Dfa& a, const ByteSet& universe);

// L(a) \ L(b), with b complemented over `universe`.
Dfa difference(const Dfa& a, const Dfa& b, const ByteSet& universe);

// L(a)·L(b) via epsilon concatenation and determinization.
Dfa concat(const Dfa& a, const Dfa& b);

bool is_empty_language(const Dfa& a);
bool contains_epsilon(const Dfa& a);

// Decision procedure for language equality: a product walk over reachable
// state pairs, treating a missing transition as the implicit dead state.
// Returns a shortest symbol sequence accepted by exactly one of the two
// automata, or nullopt when the languages are equal. O(|a|·|b|) states, no
// minimization required.
std::optional<std::vector<Symbol>> dfa_distinguishing_word(const Dfa& a,
                                                           const Dfa& b);

// True iff a and b accept the same language (dfa_distinguishing_word finds
// no witness).
bool dfa_equivalent(const Dfa& a, const Dfa& b);

// True iff a and b accept the same language. Alias for dfa_equivalent, kept
// for existing call sites.
bool equivalent(const Dfa& a, const Dfa& b);

// True iff the language is infinite (trim automaton has a cycle).
bool is_infinite_language(const Dfa& a);

// Number of accepted strings with length <= max_len, saturating at
// UINT64_MAX. For finite languages, a max_len >= num_states is exhaustive.
std::uint64_t count_strings(const Dfa& a, std::size_t max_len);

// Enumerates accepted strings shortest-first (and lexicographically within a
// length), stopping at `limit` strings or length > max_len. Requires the
// byte alphabet.
std::vector<std::string> enumerate_strings(const Dfa& a, std::size_t limit,
                                           std::size_t max_len);

// Length of the shortest accepted string, or nullopt for the empty language.
std::optional<std::size_t> shortest_string_length(const Dfa& a);

// The language of all prefixes of strings in L(a) (every co-reachable state
// becomes final). Useful for "starts-with" queries: intersecting a pattern
// with prefix_closure(target) keeps exactly the partial matches — the shape
// of the URL-fragment candidates ReLM's memorization stream surfaces.
Dfa prefix_closure(const Dfa& a);

}  // namespace relm::automata
