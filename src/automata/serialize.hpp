#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "automata/automaton.hpp"

namespace relm::automata {

// Text serialization for DFAs. The motivating use is caching compiled token
// automata — the all-encodings construction over a large vocabulary is the
// most expensive compile step (see bench/micro_compiler) and is fully
// determined by (pattern, vocabulary), so tools can persist it. The query
// compiler's artifact cache (src/core/pipeline/) embeds this format inside
// its RELM_ARTIFACT container, one section per token automaton.
//
// Format:
//   RELM_DFA v1
//   <num_symbols> <num_states> <start> <num_edges>
//   <finality bits, one char per state: 0/1>
//   <from> <symbol> <to>      (num_edges lines)
void save_dfa(const Dfa& dfa, std::ostream& out);

// Loads one RELM_DFA section. Malformed input never crashes or yields a
// structurally invalid machine: every state/symbol/edge index is
// bounds-checked and truncation (a stream that runs dry mid-section) is
// diagnosed separately from corruption, both as relm::Error with enough
// context to locate the damage. Callers holding untrusted files (the
// on-disk artifact cache) catch the error and recompile.
Dfa load_dfa(std::istream& in);

void save_dfa_file(const Dfa& dfa, const std::string& path);
Dfa load_dfa_file(const std::string& path);

// Order-independent-of-nothing structural hash: covers alphabet size, start
// state, per-state finality, and every edge in canonical (state, symbol)
// order. Two structurally equal DFAs (operator==) hash equal; since
// minimize() renumbers canonically, minimized DFAs of the same language
// collide exactly. Used as the integrity checksum in RELM_ARTIFACT files
// and to fingerprint preprocessor configuration for cache keys.
std::uint64_t dfa_structural_hash(const Dfa& dfa);

}  // namespace relm::automata
