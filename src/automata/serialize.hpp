#pragma once

#include <iosfwd>
#include <string>

#include "automata/automaton.hpp"

namespace relm::automata {

// Text serialization for DFAs. The motivating use is caching compiled token
// automata — the all-encodings construction over a large vocabulary is the
// most expensive compile step (see bench/micro_compiler) and is fully
// determined by (pattern, vocabulary), so tools can persist it.
//
// Format:
//   RELM_DFA v1
//   <num_symbols> <num_states> <start> <num_edges>
//   <finality bits, one char per state: 0/1>
//   <from> <symbol> <to>      (num_edges lines)
void save_dfa(const Dfa& dfa, std::ostream& out);
Dfa load_dfa(std::istream& in);  // throws relm::Error on malformed input

void save_dfa_file(const Dfa& dfa, const std::string& path);
Dfa load_dfa_file(const std::string& path);

}  // namespace relm::automata
