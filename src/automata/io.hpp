#pragma once

#include <functional>
#include <string>

#include "automata/automaton.hpp"

namespace relm::automata {

// Renders a DFA in Graphviz dot format, for the diagram-style outputs in the
// examples (the paper's Figures 2, 3, 12). `symbol_name` maps a symbol to a
// printable label; byte automata can pass byte_symbol_name.
std::string to_dot(const Dfa& dfa,
                   const std::function<std::string(Symbol)>& symbol_name);

// Label for a byte symbol: printable chars as-is (space as the paper's Ġ),
// others as \xNN.
std::string byte_symbol_name(Symbol s);

}  // namespace relm::automata
