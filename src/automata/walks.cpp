#include "automata/walks.hpp"

#include <limits>

namespace relm::automata {

namespace {
// Saturating add on doubles; infinity marks overflow (cycles unrolled past
// representable counts still sample proportionally sensibly because all
// competing branches saturate alike in practice; the length bound keeps this
// a corner case).
double sat_add(double x, double y) {
  double r = x + y;
  if (r > 1e300) return 1e300;
  return r;
}
}  // namespace

WalkCounts::WalkCounts(const Dfa& dfa, std::size_t max_len)
    : num_states_(dfa.num_states()), max_len_(max_len), start_(dfa.start()) {
  table_.assign((max_len + 1) * num_states_, 0.0);
  for (StateId v = 0; v < num_states_; ++v) {
    table_[v] = dfa.is_final(v) ? 1.0 : 0.0;
  }
  for (std::size_t l = 1; l <= max_len; ++l) {
    double* cur = table_.data() + l * num_states_;
    const double* prev = table_.data() + (l - 1) * num_states_;
    for (StateId v = 0; v < num_states_; ++v) {
      double total = dfa.is_final(v) ? 1.0 : 0.0;
      for (const Edge& e : dfa.edges(v)) total = sat_add(total, prev[e.to]);
      cur[v] = total;
    }
  }
}

double WalkCounts::count(StateId state, std::size_t budget) const {
  if (budget > max_len_) budget = max_len_;
  return table_[budget * num_states_ + state];
}

double WalkCounts::total() const { return count(start_, max_len_); }

bool WalkCounts::sample_uniform_walk(const Dfa& dfa, util::Pcg32& rng,
                                     std::vector<Symbol>& out) const {
  out.clear();
  StateId v = start_;
  std::size_t budget = max_len_;
  if (count(v, budget) <= 0) return false;
  for (;;) {
    // Weight of stopping here (if final): exactly one walk. Weight of taking
    // edge e: number of accepting walks from e.to with one less step.
    auto edges = dfa.edges(v);
    std::vector<double> weights;
    weights.reserve(edges.size() + 1);
    weights.push_back(dfa.is_final(v) ? 1.0 : 0.0);
    for (const Edge& e : edges) {
      weights.push_back(budget > 0 ? count(e.to, budget - 1) : 0.0);
    }
    std::size_t pick = rng.weighted(weights);
    if (pick == weights.size()) return false;  // should not happen on live states
    if (pick == 0) return true;                // stop at final state
    const Edge& e = edges[pick - 1];
    out.push_back(e.symbol);
    v = e.to;
    --budget;
  }
}

}  // namespace relm::automata
