#include "automata/thompson.hpp"

#include "util/errors.hpp"

namespace relm::automata {
namespace {

struct Fragment {
  StateId start;
  StateId accept;
};

class Builder {
 public:
  Builder() : nfa_(256) {}

  Nfa build(const RegexNode& root) {
    Fragment frag = emit(root);
    nfa_.set_start(frag.start);
    nfa_.set_final(frag.accept);
    return std::move(nfa_);
  }

 private:
  Fragment fresh() {
    StateId s = nfa_.add_state();
    StateId a = nfa_.add_state();
    return Fragment{s, a};
  }

  Fragment emit(const RegexNode& node) {
    switch (node.kind) {
      case RegexKind::kEmptySet: {
        // Two disconnected states: nothing is accepted.
        return fresh();
      }
      case RegexKind::kEpsilon: {
        Fragment f = fresh();
        nfa_.add_edge(f.start, kEpsilon, f.accept);
        return f;
      }
      case RegexKind::kCharClass: {
        Fragment f = fresh();
        for (unsigned b = 0; b < 256; ++b) {
          if (node.char_class.test(b)) {
            nfa_.add_edge(f.start, static_cast<Symbol>(b), f.accept);
          }
        }
        return f;
      }
      case RegexKind::kConcat: {
        Fragment whole = emit(*node.children.front());
        for (std::size_t i = 1; i < node.children.size(); ++i) {
          Fragment next = emit(*node.children[i]);
          nfa_.add_edge(whole.accept, kEpsilon, next.start);
          whole.accept = next.accept;
        }
        return whole;
      }
      case RegexKind::kAlternate: {
        Fragment f = fresh();
        for (const auto& child : node.children) {
          Fragment branch = emit(*child);
          nfa_.add_edge(f.start, kEpsilon, branch.start);
          nfa_.add_edge(branch.accept, kEpsilon, f.accept);
        }
        return f;
      }
      case RegexKind::kRepeat:
        return emit_repeat(node);
      case RegexKind::kIntersect:
      case RegexKind::kComplement:
      case RegexKind::kDifference:
        // Boolean-algebra nodes have no Thompson fragment; they compile
        // through the product/subset construction in automata/algebra.hpp.
        throw relm::Error(
            "thompson_construct: boolean-algebra node requires the algebra "
            "compiler (automata/algebra.hpp)");
    }
    throw relm::Error("unreachable: unknown regex node kind");
  }

  Fragment emit_repeat(const RegexNode& node) {
    const RegexNode& child = *node.children.front();
    int min = node.repeat_min;
    int max = node.repeat_max;
    if (min == 0 && max == kUnbounded) return emit_star(child);

    Fragment whole{kNoState, kNoState};
    auto append = [&](Fragment next) {
      if (whole.start == kNoState) {
        whole = next;
      } else {
        nfa_.add_edge(whole.accept, kEpsilon, next.start);
        whole.accept = next.accept;
      }
    };

    for (int i = 0; i < min; ++i) append(emit(child));

    if (max == kUnbounded) {
      append(emit_star(child));
    } else {
      // Optional tail: each extra copy can be skipped.
      for (int i = min; i < max; ++i) {
        Fragment copy = emit(child);
        Fragment opt = fresh();
        nfa_.add_edge(opt.start, kEpsilon, copy.start);
        nfa_.add_edge(copy.accept, kEpsilon, opt.accept);
        nfa_.add_edge(opt.start, kEpsilon, opt.accept);
        append(opt);
      }
    }

    if (whole.start == kNoState) {
      // r{0} == epsilon
      Fragment f = fresh();
      nfa_.add_edge(f.start, kEpsilon, f.accept);
      return f;
    }
    return whole;
  }

  Fragment emit_star(const RegexNode& child) {
    Fragment inner = emit(child);
    Fragment f = fresh();
    nfa_.add_edge(f.start, kEpsilon, inner.start);
    nfa_.add_edge(f.start, kEpsilon, f.accept);
    nfa_.add_edge(inner.accept, kEpsilon, inner.start);
    nfa_.add_edge(inner.accept, kEpsilon, f.accept);
    return f;
  }

  Nfa nfa_;
};

}  // namespace

Nfa thompson_construct(const RegexNode& root) { return Builder().build(root); }

}  // namespace relm::automata
