#include "automata/determinize.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"

namespace relm::automata {
namespace {

// Epsilon closure of a sorted state set, returned sorted and deduplicated.
std::vector<StateId> epsilon_closure(const Nfa& nfa, std::vector<StateId> states) {
  std::vector<bool> seen(nfa.num_states(), false);
  std::deque<StateId> work;
  for (StateId s : states) {
    if (!seen[s]) {
      seen[s] = true;
      work.push_back(s);
    }
  }
  std::vector<StateId> closure;
  while (!work.empty()) {
    StateId s = work.front();
    work.pop_front();
    closure.push_back(s);
    for (const Edge& e : nfa.edges(s)) {
      if (e.symbol == kEpsilon && !seen[e.to]) {
        seen[e.to] = true;
        work.push_back(e.to);
      }
    }
  }
  std::sort(closure.begin(), closure.end());
  return closure;
}

}  // namespace

Dfa determinize(const Nfa& nfa, std::size_t max_states) {
  RELM_TRACE_SPAN("automata.determinize");
  static obs::Counter& runs = obs::Registry::instance().counter("automata.determinize.runs");
  runs.add();
  RELM_DCHECK(nfa.num_states() > 0 && nfa.start() < nfa.num_states(),
              "determinize: NFA start state out of range");
  Dfa dfa(nfa.num_symbols());

  std::map<std::vector<StateId>, StateId> subset_ids;
  std::deque<std::vector<StateId>> work;

  auto intern = [&](std::vector<StateId> subset) -> StateId {
    auto it = subset_ids.find(subset);
    if (it != subset_ids.end()) return it->second;
    if (max_states != 0 && dfa.num_states() >= max_states) {
      static obs::Counter& exceeded = obs::Registry::instance().counter(
          "automata.determinize.budget_exceeded");
      exceeded.add();
      throw relm::StateBudgetError(
          "subset construction exceeded the determinization state budget",
          max_states);
    }
    bool is_final = false;
    for (StateId s : subset) {
      if (nfa.is_final(s)) {
        is_final = true;
        break;
      }
    }
    StateId id = dfa.add_state(is_final);
    subset_ids.emplace(subset, id);
    work.push_back(std::move(subset));
    return id;
  };

  std::vector<StateId> start_subset =
      epsilon_closure(nfa, {nfa.start()});
  StateId start_id = intern(std::move(start_subset));
  dfa.set_start(start_id);

  while (!work.empty()) {
    std::vector<StateId> subset = std::move(work.front());
    work.pop_front();
    StateId from_id = subset_ids.at(subset);

    // Group successor NFA states by symbol. Only symbols with outgoing edges
    // are touched, which keeps 256-ary alphabets cheap for sparse automata.
    std::unordered_map<Symbol, std::vector<StateId>> moves;
    for (StateId s : subset) {
      for (const Edge& e : nfa.edges(s)) {
        if (e.symbol != kEpsilon) moves[e.symbol].push_back(e.to);
      }
    }

    // Deterministic iteration order for reproducible state numbering.
    std::vector<Symbol> symbols;
    symbols.reserve(moves.size());
    for (const auto& [sym, _] : moves) symbols.push_back(sym);
    std::sort(symbols.begin(), symbols.end());

    for (Symbol sym : symbols) {
      RELM_DCHECK(sym < nfa.num_symbols(),
                  "determinize: NFA edge symbol outside the alphabet");
      std::vector<StateId> target = epsilon_closure(nfa, std::move(moves[sym]));
      StateId to_id = intern(std::move(target));
      dfa.add_edge(from_id, sym, to_id);
    }
  }
  return dfa;
}

Dfa trim(const Dfa& dfa) {
  RELM_DCHECK(dfa.num_states() > 0 && dfa.start() < dfa.num_states(),
              "trim: DFA start state out of range");
  std::size_t n = dfa.num_states();

  // Forward reachability from the start state.
  std::vector<bool> reachable(n, false);
  {
    std::deque<StateId> work{dfa.start()};
    reachable[dfa.start()] = true;
    while (!work.empty()) {
      StateId s = work.front();
      work.pop_front();
      for (const Edge& e : dfa.edges(s)) {
        if (!reachable[e.to]) {
          reachable[e.to] = true;
          work.push_back(e.to);
        }
      }
    }
  }

  // Backward reachability to any final state (co-reachability).
  std::vector<bool> productive(n, false);
  {
    std::vector<std::vector<StateId>> reverse(n);
    for (StateId s = 0; s < n; ++s) {
      for (const Edge& e : dfa.edges(s)) reverse[e.to].push_back(s);
    }
    std::deque<StateId> work;
    for (StateId s = 0; s < n; ++s) {
      if (dfa.is_final(s)) {
        productive[s] = true;
        work.push_back(s);
      }
    }
    while (!work.empty()) {
      StateId s = work.front();
      work.pop_front();
      for (StateId p : reverse[s]) {
        if (!productive[p]) {
          productive[p] = true;
          work.push_back(p);
        }
      }
    }
  }

  std::vector<StateId> remap(n, kNoState);
  Dfa out(dfa.num_symbols());
  auto live = [&](StateId s) { return reachable[s] && productive[s]; };

  for (StateId s = 0; s < n; ++s) {
    if (live(s)) remap[s] = out.add_state(dfa.is_final(s));
  }
  if (remap[dfa.start()] == kNoState) {
    // Empty language: keep a bare start state.
    Dfa empty(dfa.num_symbols());
    empty.set_start(empty.add_state(false));
    return empty;
  }
  for (StateId s = 0; s < n; ++s) {
    if (!live(s)) continue;
    for (const Edge& e : dfa.edges(s)) {
      if (live(e.to)) out.add_edge(remap[s], e.symbol, remap[e.to]);
    }
  }
  out.set_start(remap[dfa.start()]);
  return out;
}

namespace {

// Renumber states in BFS-from-start order (edges are already
// symbol-sorted, so the traversal order is canonical).
Dfa bfs_renumber(const Dfa& dfa) {
  std::vector<StateId> remap(dfa.num_states(), kNoState);
  std::vector<StateId> order;
  std::deque<StateId> work{dfa.start()};
  remap[dfa.start()] = 0;
  order.push_back(dfa.start());
  while (!work.empty()) {
    StateId s = work.front();
    work.pop_front();
    for (const Edge& e : dfa.edges(s)) {
      if (remap[e.to] == kNoState) {
        remap[e.to] = static_cast<StateId>(order.size());
        order.push_back(e.to);
        work.push_back(e.to);
      }
    }
  }
  Dfa out(dfa.num_symbols());
  for (StateId s : order) out.add_state(dfa.is_final(s));
  for (StateId s : order) {
    for (const Edge& e : dfa.edges(s)) {
      out.add_edge(remap[s], e.symbol, remap[e.to]);
    }
  }
  out.set_start(0);
  return out;
}

}  // namespace

Dfa minimize(const Dfa& input) {
  RELM_TRACE_SPAN("automata.minimize");
  static obs::Counter& runs = obs::Registry::instance().counter("automata.minimize.runs");
  runs.add();
  Dfa dfa = trim(input);
  std::size_t n = dfa.num_states();
  RELM_DCHECK(n <= input.num_states(),
              "minimize: trim must never grow the automaton");
  if (n <= 1) return bfs_renumber(dfa);

  // Moore partition refinement. Missing transitions map to the implicit dead
  // class (absent from the signature entirely, which distinguishes them from
  // any real class). The partition only refines, so the class count is
  // non-decreasing and an unchanged count means a fixed point.
  std::vector<StateId> cls(n);
  for (StateId s = 0; s < n; ++s) cls[s] = dfa.is_final(s) ? 1 : 0;

  std::size_t prev_count = 0;  // forces at least one refinement pass
  for (;;) {
    std::map<std::vector<StateId>, StateId> signature_ids;
    std::vector<StateId> next_cls(n);
    for (StateId s = 0; s < n; ++s) {
      std::vector<StateId> sig;
      sig.reserve(dfa.edges(s).size() * 2 + 1);
      sig.push_back(cls[s]);
      for (const Edge& e : dfa.edges(s)) {
        sig.push_back(e.symbol);
        sig.push_back(cls[e.to]);
      }
      auto [it, _] = signature_ids.emplace(std::move(sig),
                                           static_cast<StateId>(signature_ids.size()));
      next_cls[s] = it->second;
    }
    bool stable = signature_ids.size() == prev_count;
    prev_count = signature_ids.size();
    cls = std::move(next_cls);
    if (stable) break;
  }

  StateId num_classes = 0;
  for (StateId c : cls) num_classes = std::max(num_classes, c);
  ++num_classes;

  Dfa merged(dfa.num_symbols());
  std::vector<StateId> representative(num_classes, kNoState);
  for (StateId c = 0; c < num_classes; ++c) merged.add_state(false);
  for (StateId s = 0; s < n; ++s) {
    if (dfa.is_final(s)) merged.set_final(cls[s]);
    if (representative[cls[s]] == kNoState) representative[cls[s]] = s;
  }
  for (StateId c = 0; c < num_classes; ++c) {
    StateId s = representative[c];
    for (const Edge& e : dfa.edges(s)) merged.add_edge(c, e.symbol, cls[e.to]);
  }
  merged.set_start(cls[dfa.start()]);
  return bfs_renumber(trim(merged));
}

Dfa minimize_hopcroft(const Dfa& input) {
  RELM_TRACE_SPAN("automata.minimize");
  Dfa dfa = trim(input);
  const std::size_t n = dfa.num_states();
  if (n <= 1) return bfs_renumber(dfa);

  // Reverse edges grouped by symbol: inverse[symbol] -> (to -> [from...]).
  // Only symbols that actually occur are materialized.
  std::unordered_map<Symbol, std::unordered_map<StateId, std::vector<StateId>>>
      inverse;
  for (StateId s = 0; s < n; ++s) {
    for (const Edge& e : dfa.edges(s)) inverse[e.symbol][e.to].push_back(s);
  }

  // Partition as block lists plus membership index.
  std::vector<std::vector<StateId>> blocks;
  std::vector<std::size_t> block_of(n);
  {
    std::vector<StateId> finals, nonfinals;
    for (StateId s = 0; s < n; ++s) {
      (dfa.is_final(s) ? finals : nonfinals).push_back(s);
    }
    if (!finals.empty()) blocks.push_back(std::move(finals));
    if (!nonfinals.empty()) blocks.push_back(std::move(nonfinals));
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      for (StateId s : blocks[b]) block_of[s] = b;
    }
  }

  // Worklist of (block index, symbol). Seeding with every (block, symbol)
  // pair is the textbook-correct simplification; the smaller-half rule below
  // keeps the refinement loop O(n k log n).
  std::deque<std::pair<std::size_t, Symbol>> work;
  std::set<std::pair<std::size_t, Symbol>> queued;
  auto enqueue = [&](std::size_t block, Symbol symbol) {
    if (queued.insert({block, symbol}).second) work.push_back({block, symbol});
  };
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (const auto& [symbol, _] : inverse) enqueue(b, symbol);
  }

  std::vector<char> marked(n, 0);
  while (!work.empty()) {
    auto [splitter, symbol] = work.front();
    work.pop_front();
    queued.erase({splitter, symbol});

    // X = states with a `symbol`-transition into the splitter block.
    std::vector<StateId> x;
    const auto& by_to = inverse[symbol];
    for (StateId t : blocks[splitter]) {
      auto it = by_to.find(t);
      if (it != by_to.end()) x.insert(x.end(), it->second.begin(), it->second.end());
    }
    if (x.empty()) continue;
    for (StateId s : x) marked[s] = 1;

    // Find blocks partially covered by X and split them.
    std::set<std::size_t> touched;
    for (StateId s : x) touched.insert(block_of[s]);
    for (std::size_t b : touched) {
      std::vector<StateId> inside, outside;
      for (StateId s : blocks[b]) (marked[s] ? inside : outside).push_back(s);
      if (inside.empty() || outside.empty()) continue;
      // Replace b with the larger part; the smaller becomes a new block.
      bool inside_smaller = inside.size() <= outside.size();
      std::vector<StateId>& small = inside_smaller ? inside : outside;
      std::vector<StateId>& large = inside_smaller ? outside : inside;
      std::size_t fresh = blocks.size();
      for (StateId s : small) block_of[s] = fresh;
      blocks.push_back(std::move(small));
      blocks[b] = std::move(large);
      // Hopcroft's rule: the smaller half always joins the worklist; when
      // (b, sym) is still pending it now denotes the larger half, so both
      // halves end up processed.
      for (const auto& [sym, _] : inverse) enqueue(fresh, sym);
    }
    for (StateId s : x) marked[s] = 0;
  }

  // Rebuild the quotient automaton.
  Dfa merged(dfa.num_symbols());
  for (std::size_t b = 0; b < blocks.size(); ++b) merged.add_state(false);
  for (StateId s = 0; s < n; ++s) {
    if (dfa.is_final(s)) merged.set_final(block_of[s]);
  }
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    StateId representative = blocks[b].front();
    for (const Edge& e : dfa.edges(representative)) {
      merged.add_edge(static_cast<StateId>(b), e.symbol,
                      static_cast<StateId>(block_of[e.to]));
    }
  }
  merged.set_start(static_cast<StateId>(block_of[dfa.start()]));
  return bfs_renumber(trim(merged));
}

}  // namespace relm::automata
