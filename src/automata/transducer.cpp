#include "automata/transducer.hpp"

#include <deque>
#include <map>

#include "automata/determinize.hpp"
#include "util/errors.hpp"

namespace relm::automata {

Fst Fst::identity(const Dfa& language) {
  Fst fst(language.num_symbols());
  for (StateId s = 0; s < language.num_states(); ++s) {
    fst.add_state(language.is_final(s));
  }
  for (StateId s = 0; s < language.num_states(); ++s) {
    for (const Edge& e : language.edges(s)) {
      fst.add_edge(s, e.symbol, e.symbol, e.to);
    }
  }
  fst.set_start(language.start());
  return fst;
}

Fst compose(const Fst& a, const Fst& b) {
  if (a.num_symbols() != b.num_symbols()) {
    throw relm::Error("compose: transducers over different alphabets");
  }
  Fst out(a.num_symbols());
  std::map<std::pair<StateId, StateId>, StateId> ids;
  std::deque<std::pair<StateId, StateId>> work;

  auto intern = [&](StateId qa, StateId qb) {
    auto it = ids.find({qa, qb});
    if (it != ids.end()) return it->second;
    StateId id = out.add_state(a.is_final(qa) && b.is_final(qb));
    ids.emplace(std::make_pair(qa, qb), id);
    work.push_back({qa, qb});
    return id;
  };

  StateId start = intern(a.start(), b.start());
  out.set_start(start);

  while (!work.empty()) {
    auto [qa, qb] = work.front();
    work.pop_front();
    StateId from = ids.at({qa, qb});

    for (const FstEdge& ea : a.edges(qa)) {
      if (ea.out == kEpsilon) {
        // a emits nothing: advance a alone.
        out.add_edge(from, ea.in, kEpsilon, intern(ea.to, qb), ea.weight);
        continue;
      }
      for (const FstEdge& eb : b.edges(qb)) {
        if (eb.in == ea.out) {
          out.add_edge(from, ea.in, eb.out, intern(ea.to, eb.to),
                       ea.weight + eb.weight);
        }
      }
    }
    for (const FstEdge& eb : b.edges(qb)) {
      if (eb.in == kEpsilon) {
        // b consumes nothing: advance b alone.
        out.add_edge(from, kEpsilon, eb.out, intern(qa, eb.to), eb.weight);
      }
    }
  }
  return out;
}

namespace {
Dfa project(const Fst& t, bool output_side) {
  Nfa nfa(t.num_symbols());
  for (StateId s = 0; s < t.num_states(); ++s) nfa.add_state(t.is_final(s));
  for (StateId s = 0; s < t.num_states(); ++s) {
    for (const FstEdge& e : t.edges(s)) {
      nfa.add_edge(s, output_side ? e.out : e.in, e.to);
    }
  }
  nfa.set_start(t.start());
  return minimize(determinize(nfa));
}
}  // namespace

Dfa output_projection(const Fst& t) { return project(t, true); }
Dfa input_projection(const Fst& t) { return project(t, false); }

Dfa apply(const Fst& t, const Dfa& input) {
  return output_projection(compose(Fst::identity(input), t));
}

Fst edit_transducer(int max_edits, const ByteSet& alphabet) {
  if (max_edits < 0) throw relm::Error("edit_transducer: negative distance");
  Fst fst(256);
  for (int e = 0; e <= max_edits; ++e) fst.add_state(true);
  std::vector<unsigned> alpha;
  for (unsigned b = 0; b < 256; ++b) {
    if (alphabet.test(b)) alpha.push_back(b);
  }
  for (int e = 0; e <= max_edits; ++e) {
    for (unsigned c : alpha) {
      fst.add_edge(e, c, c, e);  // copy
      if (e < max_edits) {
        fst.add_edge(e, c, kEpsilon, e + 1);  // deletion
        fst.add_edge(e, kEpsilon, c, e + 1);  // insertion
        for (unsigned d : alpha) {
          if (d != c) fst.add_edge(e, c, d, e + 1);  // substitution
        }
      }
    }
  }
  fst.set_start(0);
  return fst;
}

Fst case_fold_transducer() {
  Fst fst(256);
  StateId s = fst.add_state(true);
  fst.set_start(s);
  ByteSet all = printable_ascii_and_ws();
  for (unsigned c = 0; c < 256; ++c) {
    if (!all.test(c)) continue;
    fst.add_edge(s, c, c, s);
    if (c >= 'a' && c <= 'z') fst.add_edge(s, c, c - 'a' + 'A', s);
    if (c >= 'A' && c <= 'Z') fst.add_edge(s, c, c - 'A' + 'a', s);
  }
  return fst;
}

Fst replace_transducer(std::string_view from, std::string_view to,
                       const ByteSet& passthrough) {
  if (from.empty()) throw relm::Error("replace_transducer: empty source");
  Fst fst(256);
  StateId home = fst.add_state(true);
  fst.set_start(home);
  for (unsigned c = 0; c < 256; ++c) {
    if (passthrough.test(c)) fst.add_edge(home, c, c, home);
  }
  // Consume `from` while emitting nothing, then emit `to`, then return home.
  StateId cur = home;
  for (char c : from) {
    StateId next = fst.add_state(false);
    fst.add_edge(cur, static_cast<unsigned char>(c), kEpsilon, next);
    cur = next;
  }
  for (char c : to) {
    StateId next = fst.add_state(false);
    fst.add_edge(cur, kEpsilon, static_cast<unsigned char>(c), next);
    cur = next;
  }
  fst.add_edge(cur, kEpsilon, kEpsilon, home);
  return fst;
}

}  // namespace relm::automata
