#pragma once

#include <bitset>
#include <memory>
#include <string>
#include <vector>

namespace relm::automata {

// Character set over the byte alphabet. Regular-expression atoms are always
// sets (a literal `a` is the singleton set {a}); this collapses literals,
// escapes like \d, `.` and bracket classes into one node kind.
using ByteSet = std::bitset<256>;

enum class RegexKind {
  kEmptySet,    // ∅ — matches nothing
  kEpsilon,     // ε — matches the empty string
  kCharClass,   // one symbol drawn from a ByteSet
  kConcat,      // r1 r2 ... rn
  kAlternate,   // r1 | r2 | ... | rn
  kRepeat,      // r{min,max}; max == kUnbounded means r{min,}
  // Boolean query algebra (ISSUE 9). These are not regular operators in the
  // Thompson sense: they compile through the algebra product/subset
  // construction (automata/algebra.hpp), not thompson_construct.
  kIntersect,   // r1 & r2 & ... & rn — strings in every child language
  kComplement,  // ~r — strings over the text universe NOT in L(r)
  kDifference,  // r1 - r2 — L(r1) \ L(r2)
};

inline constexpr int kUnbounded = -1;

struct RegexNode;
using RegexPtr = std::unique_ptr<RegexNode>;

struct RegexNode {
  RegexKind kind;
  ByteSet char_class;             // kCharClass
  std::vector<RegexPtr> children; // kConcat / kAlternate / kRepeat (1 child)
  int repeat_min = 0;             // kRepeat
  int repeat_max = 0;             // kRepeat; kUnbounded for open-ended

  static RegexPtr empty_set();
  static RegexPtr epsilon();
  static RegexPtr char_class_node(ByteSet set);
  static RegexPtr literal(unsigned char c);
  static RegexPtr literal_string(std::string_view text);
  static RegexPtr concat(std::vector<RegexPtr> children);
  static RegexPtr alternate(std::vector<RegexPtr> children);
  static RegexPtr repeat(RegexPtr child, int min, int max);
  static RegexPtr intersect(std::vector<RegexPtr> children);
  static RegexPtr complement(RegexPtr child);
  static RegexPtr difference(RegexPtr left, RegexPtr right);

  RegexPtr clone() const;
};

// True iff the tree contains any boolean-algebra node (kIntersect,
// kComplement, kDifference). Such trees must compile through
// automata/algebra.hpp; thompson_construct rejects them.
bool has_boolean_ops(const RegexNode& node);

// Named byte sets shared by the parser and the Levenshtein preprocessor.
// The paper's queries operate over ASCII (§B notes Unicode needs byte-level
// rewrites, which our byte alphabet supports but the built-in classes target
// printable ASCII).
ByteSet printable_ascii();          // 0x20..0x7e
ByteSet printable_ascii_and_ws();   // printable plus \t \n \r
ByteSet digit_set();                // [0-9]
ByteSet word_set();                 // [A-Za-z0-9_]
ByteSet space_set();                // [ \t\n\r\f\v]

}  // namespace relm::automata
