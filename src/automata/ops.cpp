#include "automata/ops.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

#include "automata/determinize.hpp"
#include "util/errors.hpp"

namespace relm::automata {
namespace {

using StatePair = std::pair<StateId, StateId>;

// Generic product construction. `both_required`: final iff both finals
// (intersection) vs either final (union). For union the automata must be
// completed first so that neither side "dies" early.
Dfa product(const Dfa& a, const Dfa& b, bool both_required) {
  if (a.num_symbols() != b.num_symbols()) {
    throw relm::Error("product of automata over different alphabets");
  }
  RELM_DCHECK(a.start() < a.num_states() && b.start() < b.num_states(),
              "product: input start states out of range");
  Dfa out(a.num_symbols());
  std::map<StatePair, StateId> ids;
  std::deque<StatePair> work;

  auto intern = [&](StatePair p) {
    auto it = ids.find(p);
    if (it != ids.end()) return it->second;
    bool fa = a.is_final(p.first);
    bool fb = b.is_final(p.second);
    StateId id = out.add_state(both_required ? (fa && fb) : (fa || fb));
    ids.emplace(p, id);
    work.push_back(p);
    return id;
  };

  StateId start = intern({a.start(), b.start()});
  out.set_start(start);

  while (!work.empty()) {
    StatePair p = work.front();
    work.pop_front();
    StateId from = ids.at(p);
    // Walk the two sorted edge lists in step.
    auto ea = a.edges(p.first);
    auto eb = b.edges(p.second);
    std::size_t i = 0, j = 0;
    while (i < ea.size() && j < eb.size()) {
      if (ea[i].symbol < eb[j].symbol) {
        ++i;
      } else if (ea[i].symbol > eb[j].symbol) {
        ++j;
      } else {
        StateId to = intern({ea[i].to, eb[j].to});
        out.add_edge(from, ea[i].symbol, to);
        ++i;
        ++j;
      }
    }
  }
  return trim(out);
}

// Completes the automaton over `universe` by adding a dead state.
Dfa complete(const Dfa& a, const ByteSet& universe) {
  Dfa out(a.num_symbols());
  for (StateId s = 0; s < a.num_states(); ++s) out.add_state(a.is_final(s));
  for (StateId s = 0; s < a.num_states(); ++s) {
    for (const Edge& e : a.edges(s)) out.add_edge(s, e.symbol, e.to);
  }
  out.set_start(a.start());
  StateId dead = out.add_state(false);
  for (StateId s = 0; s < out.num_states(); ++s) {
    for (unsigned b = 0; b < 256 && b < a.num_symbols(); ++b) {
      if (!universe.test(b)) continue;
      if (out.next(s, b) == kNoState) out.add_edge(s, b, dead);
    }
  }
  RELM_DCHECK(out.num_states() == a.num_states() + 1,
              "complete: exactly one dead state is added");
  return out;
}

}  // namespace

Dfa intersect(const Dfa& a, const Dfa& b) { return product(a, b, true); }

Dfa union_of(const Dfa& a, const Dfa& b) {
  // Union via NFA with a fresh start state branching to both; avoids having
  // to complete the automata as a product-based union would.
  if (a.num_symbols() != b.num_symbols()) {
    throw relm::Error("union of automata over different alphabets");
  }
  Nfa nfa(a.num_symbols());
  StateId start = nfa.add_state();
  nfa.set_start(start);

  auto copy_in = [&](const Dfa& src) {
    std::vector<StateId> remap(src.num_states());
    for (StateId s = 0; s < src.num_states(); ++s) {
      remap[s] = nfa.add_state(src.is_final(s));
    }
    for (StateId s = 0; s < src.num_states(); ++s) {
      for (const Edge& e : src.edges(s)) {
        nfa.add_edge(remap[s], e.symbol, remap[e.to]);
      }
    }
    return remap[src.start()];
  };

  nfa.add_edge(start, kEpsilon, copy_in(a));
  nfa.add_edge(start, kEpsilon, copy_in(b));
  return trim(determinize(nfa));
}

Dfa complement(const Dfa& a, const ByteSet& universe) {
  Dfa completed = complete(a, universe);
  for (StateId s = 0; s < completed.num_states(); ++s) {
    completed.set_final(s, !completed.is_final(s));
  }
  // Do not trim before flipping finality is done; trim now.
  return trim(completed);
}

Dfa difference(const Dfa& a, const Dfa& b, const ByteSet& universe) {
  return intersect(a, complement(b, universe));
}

Dfa concat(const Dfa& a, const Dfa& b) {
  if (a.num_symbols() != b.num_symbols()) {
    throw relm::Error("concat of automata over different alphabets");
  }
  Nfa nfa(a.num_symbols());
  std::vector<StateId> remap_a(a.num_states()), remap_b(b.num_states());
  for (StateId s = 0; s < a.num_states(); ++s) remap_a[s] = nfa.add_state(false);
  for (StateId s = 0; s < b.num_states(); ++s) {
    remap_b[s] = nfa.add_state(b.is_final(s));
  }
  for (StateId s = 0; s < a.num_states(); ++s) {
    for (const Edge& e : a.edges(s)) nfa.add_edge(remap_a[s], e.symbol, remap_a[e.to]);
  }
  for (StateId s = 0; s < b.num_states(); ++s) {
    for (const Edge& e : b.edges(s)) nfa.add_edge(remap_b[s], e.symbol, remap_b[e.to]);
  }
  for (StateId s = 0; s < a.num_states(); ++s) {
    if (a.is_final(s)) nfa.add_edge(remap_a[s], kEpsilon, remap_b[b.start()]);
  }
  nfa.set_start(remap_a[a.start()]);
  return trim(determinize(nfa));
}

bool is_empty_language(const Dfa& a) {
  Dfa t = trim(a);
  // After trim, any remaining final state is reachable.
  for (StateId s = 0; s < t.num_states(); ++s) {
    if (t.is_final(s)) return false;
  }
  return true;
}

bool contains_epsilon(const Dfa& a) { return a.is_final(a.start()); }

std::optional<std::vector<Symbol>> dfa_distinguishing_word(const Dfa& a,
                                                           const Dfa& b) {
  if (a.num_symbols() != b.num_symbols()) {
    throw relm::Error("dfa_distinguishing_word over different alphabets");
  }
  // BFS over reachable pairs; kNoState stands in for the implicit dead
  // state on either side. Breadth-first order makes the witness shortest.
  struct Visit {
    StatePair pair;
    std::size_t parent;  // index into `visits`; npos for the root
    Symbol via;
  };
  constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  auto is_final = [](const Dfa& d, StateId s) {
    return s != kNoState && d.is_final(s);
  };

  std::vector<Visit> visits;
  std::map<StatePair, std::size_t> seen;
  std::deque<std::size_t> work;

  auto visit = [&](StatePair p, std::size_t parent, Symbol via) {
    if (seen.contains(p)) return;
    seen.emplace(p, visits.size());
    visits.push_back({p, parent, via});
    work.push_back(visits.size() - 1);
  };
  visit({a.start(), b.start()}, kNpos, 0);

  while (!work.empty()) {
    std::size_t idx = work.front();
    work.pop_front();
    StatePair p = visits[idx].pair;
    if (is_final(a, p.first) != is_final(b, p.second)) {
      std::vector<Symbol> word;
      for (std::size_t i = idx; visits[i].parent != kNpos; i = visits[i].parent) {
        word.push_back(visits[i].via);
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    // Merge the two sorted edge lists; a symbol present on either side can
    // separate the languages (the absent side moves to dead).
    auto ea = p.first == kNoState ? std::span<const Edge>{} : a.edges(p.first);
    auto eb = p.second == kNoState ? std::span<const Edge>{} : b.edges(p.second);
    std::size_t i = 0, j = 0;
    while (i < ea.size() || j < eb.size()) {
      Symbol sym;
      StateId ta = kNoState, tb = kNoState;
      if (j >= eb.size() || (i < ea.size() && ea[i].symbol < eb[j].symbol)) {
        sym = ea[i].symbol;
        ta = ea[i++].to;
      } else if (i >= ea.size() || eb[j].symbol < ea[i].symbol) {
        sym = eb[j].symbol;
        tb = eb[j++].to;
      } else {
        sym = ea[i].symbol;
        ta = ea[i++].to;
        tb = eb[j++].to;
      }
      if (ta == kNoState && tb == kNoState) continue;
      visit({ta, tb}, idx, sym);
    }
  }
  return std::nullopt;
}

bool dfa_equivalent(const Dfa& a, const Dfa& b) {
  return !dfa_distinguishing_word(a, b).has_value();
}

bool equivalent(const Dfa& a, const Dfa& b) { return dfa_equivalent(a, b); }

bool is_infinite_language(const Dfa& a) {
  Dfa t = trim(a);
  // Cycle detection via iterative DFS with colors.
  enum Color : char { kWhite, kGray, kBlack };
  std::vector<Color> color(t.num_states(), kWhite);
  std::vector<std::pair<StateId, std::size_t>> stack;
  for (StateId root = 0; root < t.num_states(); ++root) {
    if (color[root] != kWhite) continue;
    stack.push_back({root, 0});
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [s, idx] = stack.back();
      auto edges = t.edges(s);
      if (idx < edges.size()) {
        StateId to = edges[idx++].to;
        if (color[to] == kGray) return true;
        if (color[to] == kWhite) {
          color[to] = kGray;
          stack.push_back({to, 0});
        }
      } else {
        color[s] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::uint64_t count_strings(const Dfa& a, std::size_t max_len) {
  Dfa t = trim(a);
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  auto sat_add = [&](std::uint64_t x, std::uint64_t y) {
    return (x > kMax - y) ? kMax : x + y;
  };
  // counts[s] = number of accepting walks from s with <= l steps, built up
  // length by length.
  std::vector<std::uint64_t> prev(t.num_states(), 0);
  for (StateId s = 0; s < t.num_states(); ++s) prev[s] = t.is_final(s) ? 1 : 0;
  for (std::size_t l = 1; l <= max_len; ++l) {
    std::vector<std::uint64_t> cur(t.num_states(), 0);
    for (StateId s = 0; s < t.num_states(); ++s) {
      std::uint64_t total = t.is_final(s) ? 1 : 0;
      for (const Edge& e : t.edges(s)) total = sat_add(total, prev[e.to]);
      cur[s] = total;
    }
    if (cur == prev) break;  // fixed point: no longer strings exist
    prev = std::move(cur);
  }
  return prev.empty() ? 0 : prev[t.start()];
}

std::vector<std::string> enumerate_strings(const Dfa& a, std::size_t limit,
                                           std::size_t max_len) {
  if (a.num_symbols() != 256) {
    throw relm::Error("enumerate_strings requires a byte-alphabet automaton");
  }
  Dfa t = trim(a);
  std::vector<std::string> out;
  if (t.num_states() == 0) return out;

  // BFS by length; within a level, states are expanded in insertion order and
  // edges in symbol order, which yields shortest-first, lexicographic-within-
  // length enumeration.
  struct Item {
    StateId state;
    std::string text;
  };
  std::deque<Item> frontier{{t.start(), ""}};
  if (t.is_final(t.start())) out.push_back("");

  std::size_t depth = 0;
  while (!frontier.empty() && out.size() < limit && depth < max_len) {
    ++depth;
    std::deque<Item> next;
    while (!frontier.empty()) {
      Item item = std::move(frontier.front());
      frontier.pop_front();
      for (const Edge& e : t.edges(item.state)) {
        Item child{e.to, item.text + static_cast<char>(e.symbol)};
        if (t.is_final(e.to) && out.size() < limit) out.push_back(child.text);
        next.push_back(std::move(child));
      }
    }
    frontier = std::move(next);
  }
  return out;
}

Dfa prefix_closure(const Dfa& a) {
  // After trim, every state can reach a final state, so every state accepts
  // some completion: mark them all final.
  Dfa t = trim(a);
  for (StateId s = 0; s < t.num_states(); ++s) t.set_final(s);
  // The empty automaton has one non-final dead start; keep it empty.
  if (t.num_states() == 1 && t.edges(0).empty() && !a.is_final(a.start()) &&
      is_empty_language(a)) {
    Dfa empty(a.num_symbols());
    empty.set_start(empty.add_state(false));
    return empty;
  }
  return minimize(t);
}

std::optional<std::size_t> shortest_string_length(const Dfa& a) {
  Dfa t = trim(a);
  std::deque<std::pair<StateId, std::size_t>> work{{t.start(), 0}};
  std::vector<bool> seen(t.num_states(), false);
  seen[t.start()] = true;
  while (!work.empty()) {
    auto [s, d] = work.front();
    work.pop_front();
    if (t.is_final(s)) return d;
    for (const Edge& e : t.edges(s)) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        work.push_back({e.to, d + 1});
      }
    }
  }
  return std::nullopt;
}

}  // namespace relm::automata
