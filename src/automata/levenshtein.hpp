#pragma once

#include "automata/automaton.hpp"
#include "automata/regex_ast.hpp"

namespace relm::automata {

// Levenshtein expansion (§3.4): transduces a language L into the language of
// all strings within `distance` character edits (insertion, deletion,
// substitution) of some string in L. This is the composition of L with a
// Levenshtein transducer (Hassan et al., 2008); higher distances correspond
// to chained compositions, which this function performs in one pass by
// tracking the edit budget in the state.
//
// `alphabet` is the symbol set insertions and substitutions may introduce
// (the paper's experiments operate over ASCII text; the default used by the
// preprocessor is printable ASCII).
//
// The result is determinized and minimized.
Dfa levenshtein_expand(const Dfa& language, int distance, const ByteSet& alphabet);

// Convenience: edit distance between two strings (used by tests to
// brute-force-check levenshtein_expand).
std::size_t edit_distance(std::string_view a, std::string_view b);

}  // namespace relm::automata
