#include "automata/regex_parser.hpp"

#include <cctype>
#include <string>

#include "util/errors.hpp"

namespace relm::automata {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view pattern) : pattern_(pattern) {}

  RegexPtr parse() {
    RegexPtr node = parse_alternation();
    if (pos_ != pattern_.size()) {
      fail("unexpected character '" + std::string(1, pattern_[pos_]) + "'");
    }
    return node;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw relm::RegexError(message, pos_);
  }

  // Diagnostic anchored to an operator's own span rather than the current
  // cursor (which has usually moved past the operator by the time the
  // missing operand is discovered).
  [[noreturn]] void fail_at(const std::string& message, std::size_t position,
                            std::size_t length = 1) const {
    throw relm::RegexError(message, position, length);
  }

  bool done() const { return pos_ >= pattern_.size(); }
  char peek() const { return pattern_[pos_]; }
  char take() { return pattern_[pos_++]; }

  // Precedence, loosest to tightest (see docs/cli.md):
  //   alternation `|` < difference `-` < intersection `&` < concatenation
  //   < complement `~`/`!` (prefix) < repetition < atoms.
  // `-` keeps its old literal meaning inside [...] classes; elsewhere the
  // four algebra characters are metacharacters and must be escaped to match
  // literally.
  RegexPtr parse_alternation() {
    std::vector<RegexPtr> branches;
    branches.push_back(parse_difference());
    while (!done() && peek() == '|') {
      take();
      branches.push_back(parse_difference());
    }
    return RegexNode::alternate(std::move(branches));
  }

  RegexPtr parse_difference() {
    std::size_t left_start = pos_;
    RegexPtr node = parse_intersection();
    while (!done() && peek() == '-') {
      std::size_t op_pos = pos_;
      if (pos_ == left_start) {
        fail_at("difference operator '-' missing left-hand operand", op_pos);
      }
      take();
      std::size_t rhs_start = pos_;
      RegexPtr rhs = parse_intersection();
      if (pos_ == rhs_start) {
        fail_at("difference operator '-' missing right-hand operand", op_pos);
      }
      node = RegexNode::difference(std::move(node), std::move(rhs));
    }
    return node;
  }

  RegexPtr parse_intersection() {
    std::size_t left_start = pos_;
    std::vector<RegexPtr> branches;
    branches.push_back(parse_concat());
    while (!done() && peek() == '&') {
      std::size_t op_pos = pos_;
      if (pos_ == left_start) {
        fail_at("intersection operator '&' missing left-hand operand", op_pos);
      }
      take();
      std::size_t rhs_start = pos_;
      branches.push_back(parse_concat());
      if (pos_ == rhs_start) {
        fail_at("intersection operator '&' missing right-hand operand", op_pos);
      }
    }
    return RegexNode::intersect(std::move(branches));
  }

  RegexPtr parse_concat() {
    std::vector<RegexPtr> parts;
    while (!done() && peek() != '|' && peek() != ')' && peek() != '&' &&
           peek() != '-') {
      parts.push_back(parse_complement());
    }
    return RegexNode::concat(std::move(parts));
  }

  RegexPtr parse_complement() {
    if (peek() == '~' || peek() == '!') {
      std::size_t op_pos = pos_;
      char op = take();
      if (done() || peek() == '|' || peek() == ')' || peek() == '&' ||
          peek() == '-') {
        fail_at(std::string("complement operator '") + op +
                    "' missing operand",
                op_pos);
      }
      return RegexNode::complement(parse_complement());
    }
    return parse_repeat();
  }

  RegexPtr parse_repeat() {
    RegexPtr atom = parse_atom();
    for (;;) {
      if (done()) return atom;
      char c = peek();
      if (c == '*') {
        take();
        atom = RegexNode::repeat(std::move(atom), 0, kUnbounded);
      } else if (c == '+') {
        take();
        atom = RegexNode::repeat(std::move(atom), 1, kUnbounded);
      } else if (c == '?') {
        take();
        atom = RegexNode::repeat(std::move(atom), 0, 1);
      } else if (c == '{') {
        std::size_t brace_pos = pos_;
        take();
        atom = parse_counted_repeat(std::move(atom), brace_pos);
      } else {
        return atom;
      }
    }
  }

  RegexPtr parse_counted_repeat(RegexPtr atom, std::size_t brace_pos) {
    int min = parse_int("repetition lower bound");
    int max = min;
    if (!done() && peek() == ',') {
      take();
      if (!done() && peek() == '}') {
        max = kUnbounded;
      } else {
        max = parse_int("repetition upper bound");
        if (max < min) {
          // Anchor to the whole {m,n} construct (closing brace included when
          // present) — the defect is the bound pair, not the cursor position.
          std::size_t span = pos_ - brace_pos + (!done() && peek() == '}');
          fail_at("repetition upper bound below lower bound", brace_pos, span);
        }
      }
    }
    if (done() || take() != '}') fail("expected '}' to close repetition");
    return RegexNode::repeat(std::move(atom), min, max);
  }

  int parse_int(const std::string& what) {
    if (done() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("expected digit in " + what);
    }
    long value = 0;
    while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
      value = value * 10 + (take() - '0');
      if (value > 10000) fail(what + " too large (limit 10000)");
    }
    return static_cast<int>(value);
  }

  RegexPtr parse_atom() {
    if (done()) fail("expected an atom");
    char c = take();
    switch (c) {
      case '(': {
        RegexPtr inner = parse_alternation();
        if (done() || take() != ')') fail("expected ')'");
        return inner;
      }
      case '[':
        return RegexNode::char_class_node(parse_char_class());
      case '.':
        return RegexNode::char_class_node(printable_ascii());
      case '\\':
        return RegexNode::char_class_node(parse_escape());
      case '*':
      case '+':
      case '?':
        fail("quantifier with nothing to repeat");
      case ')':
        fail("unmatched ')'");
      case '|':
        fail("empty alternation branch");
      default:
        return RegexNode::literal(static_cast<unsigned char>(c));
    }
  }

  // Parses the body of an escape, after the backslash has been consumed.
  ByteSet parse_escape() {
    if (done()) fail("dangling backslash");
    char c = take();
    ByteSet set;
    switch (c) {
      case 'd': return digit_set();
      case 'D': return printable_ascii_and_ws() & ~digit_set();
      case 'w': return word_set();
      case 'W': return printable_ascii_and_ws() & ~word_set();
      case 's': return space_set();
      case 'S': return printable_ascii_and_ws() & ~space_set();
      case 'n': set.set('\n'); return set;
      case 't': set.set('\t'); return set;
      case 'r': set.set('\r'); return set;
      case 'f': set.set('\f'); return set;
      case 'v': set.set('\v'); return set;
      case '0': set.set(0); return set;
      case 'x': {
        int value = 0;
        for (int i = 0; i < 2; ++i) {
          if (done() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
            fail("expected two hex digits after \\x");
          }
          char h = take();
          value = value * 16 +
                  (std::isdigit(static_cast<unsigned char>(h))
                       ? h - '0'
                       : std::tolower(static_cast<unsigned char>(h)) - 'a' + 10);
        }
        set.set(static_cast<unsigned char>(value));
        return set;
      }
      default:
        if (std::isalnum(static_cast<unsigned char>(c))) {
          fail(std::string("unknown escape \\") + c);
        }
        set.set(static_cast<unsigned char>(c));
        return set;
    }
  }

  // Parses a [...] class body, after '[' has been consumed.
  ByteSet parse_char_class() {
    bool negated = false;
    if (!done() && peek() == '^') {
      take();
      negated = true;
    }
    ByteSet set;
    bool first = true;
    while (true) {
      if (done()) fail("unterminated character class");
      char c = peek();
      if (c == ']' && !first) {
        take();
        break;
      }
      first = false;
      ByteSet atom = parse_class_atom();
      // Range? Only when the atom is a single literal character.
      if (!done() && peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        if (atom.count() != 1) fail("character range bound must be a single character");
        take();  // '-'
        ByteSet hi_atom = parse_class_atom();
        if (hi_atom.count() != 1) fail("character range bound must be a single character");
        unsigned lo = first_set_bit(atom);
        unsigned hi = first_set_bit(hi_atom);
        if (hi < lo) fail("character range out of order");
        for (unsigned b = lo; b <= hi; ++b) set.set(b);
      } else {
        set |= atom;
      }
    }
    if (negated) {
      // Negation is relative to the printable-ASCII-plus-whitespace universe;
      // matching arbitrary non-text bytes is never what a text query wants.
      return printable_ascii_and_ws() & ~set;
    }
    return set;
  }

  ByteSet parse_class_atom() {
    char c = take();
    if (c == '\\') return parse_escape();
    ByteSet set;
    set.set(static_cast<unsigned char>(c));
    return set;
  }

  static unsigned first_set_bit(const ByteSet& set) {
    for (unsigned b = 0; b < 256; ++b) {
      if (set.test(b)) return b;
    }
    return 256;
  }

  std::string_view pattern_;
  std::size_t pos_ = 0;
};

}  // namespace

RegexPtr parse_regex(std::string_view pattern) {
  return Parser(pattern).parse();
}

}  // namespace relm::automata
