#include "automata/regex.hpp"

#include "automata/algebra.hpp"
#include "automata/determinize.hpp"
#include "automata/regex_parser.hpp"
#include "automata/thompson.hpp"
#include "obs/trace.hpp"

namespace relm::automata {

Dfa compile_regex(std::string_view pattern) {
  Dfa dfa = compile_regex_unminimized(pattern);
  RELM_TRACE_SPAN("regex.minimize");
  return minimize(dfa);
}

Dfa compile_regex_unminimized(std::string_view pattern) {
  RegexPtr ast;
  {
    RELM_TRACE_SPAN("regex.parse");
    ast = parse_regex(pattern);
  }
  // Boolean-algebra patterns (and plain ones alike) compile through the
  // algebra compiler under the environment-configured state budget; for
  // boolean-free ASTs this is exactly thompson + budgeted determinize.
  AlgebraOptions options;
  options.state_budget = determinize_budget_from_env();
  options.lazy = lazy_determinize_from_env();
  RELM_TRACE_SPAN("regex.determinize");
  return compile_ast(*ast, options);
}

}  // namespace relm::automata
