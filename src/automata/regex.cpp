#include "automata/regex.hpp"

#include "automata/determinize.hpp"
#include "automata/regex_parser.hpp"
#include "automata/thompson.hpp"
#include "obs/trace.hpp"

namespace relm::automata {

Dfa compile_regex(std::string_view pattern) {
  Dfa dfa = compile_regex_unminimized(pattern);
  RELM_TRACE_SPAN("regex.minimize");
  return minimize(dfa);
}

Dfa compile_regex_unminimized(std::string_view pattern) {
  RegexPtr ast;
  {
    RELM_TRACE_SPAN("regex.parse");
    ast = parse_regex(pattern);
  }
  Nfa nfa = [&] {
    RELM_TRACE_SPAN("regex.thompson");
    return thompson_construct(*ast);
  }();
  RELM_TRACE_SPAN("regex.determinize");
  return trim(determinize(nfa));
}

}  // namespace relm::automata
