#include "automata/regex.hpp"

#include "automata/determinize.hpp"
#include "automata/regex_parser.hpp"
#include "automata/thompson.hpp"

namespace relm::automata {

Dfa compile_regex(std::string_view pattern) {
  return minimize(compile_regex_unminimized(pattern));
}

Dfa compile_regex_unminimized(std::string_view pattern) {
  RegexPtr ast = parse_regex(pattern);
  Nfa nfa = thompson_construct(*ast);
  return trim(determinize(nfa));
}

}  // namespace relm::automata
