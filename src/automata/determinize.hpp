#pragma once

#include "automata/automaton.hpp"

namespace relm::automata {

// Subset construction with epsilon closure. Only reachable subsets are
// materialized, so the output size tracks the live part of the language
// rather than the worst-case 2^n. `max_states` caps the number of subsets
// materialized; exceeding it throws relm::StateBudgetError (0 = unlimited).
Dfa determinize(const Nfa& nfa, std::size_t max_states = 0);

// Removes states that are unreachable from the start or cannot reach a final
// state. The result is "trim"; on a trim DFA, a cycle implies an infinite
// language. A DFA whose language is empty trims to a single non-final start
// state with no edges.
Dfa trim(const Dfa& dfa);

// Minimizes a (partial) DFA by partition refinement (Moore's algorithm over
// transition signatures), after trimming. The result is renumbered in BFS
// order with per-state edges sorted by symbol, so two minimized DFAs accept
// the same language iff they are structurally equal (operator==): minimal
// DFAs are unique up to isomorphism, and BFS numbering fixes the isomorphism.
Dfa minimize(const Dfa& dfa);

// Hopcroft's O(n k log n) minimization — the asymptotically better
// alternative to minimize(); produces the identical canonical machine
// (property-tested against minimize(); bench/micro_compiler compares their
// constants). Prefer this for automata with many states, e.g. Levenshtein
// expansions of long patterns.
Dfa minimize_hopcroft(const Dfa& dfa);

}  // namespace relm::automata
