#pragma once

#include <cstddef>
#include <vector>

#include "automata/automaton.hpp"
#include "util/rng.hpp"

namespace relm::automata {

// Walk counting for unbiased sampling (§3.3, Appendix C).
//
// The paper computes walks(q0, n) = s(q0)ᵀ · Aⁿ · f(F); summing over n gives
// the number of accepting walks from a state. We materialize the equivalent
// dynamic program: counts[l][v] = number of accepting walks starting at v
// that take at most l edge steps,
//
//   counts[0][v]  = [v ∈ F]
//   counts[l][v]  = [v ∈ F] + Σ_{e: v→u} counts[l-1][u]
//
// Counts use saturating doubles: for cyclic automata the number of walks
// grows without bound, and the paper's workaround — "unroll the cycles until
// the LLM's max sequence length" — is exactly the length bound l here.
class WalkCounts {
 public:
  // Builds the table for walks of length <= max_len on (the trim part of) the
  // automaton. States not in the trim part get zero counts.
  WalkCounts(const Dfa& dfa, std::size_t max_len);

  // Number of accepting walks from `state` using at most `budget` steps.
  double count(StateId state, std::size_t budget) const;

  // Total accepting walks from the start state (the paper's walks(q0)).
  double total() const;

  std::size_t max_len() const { return max_len_; }

  // Samples an accepting walk from the start state uniformly at random among
  // all accepting walks of length <= max_len. Each edge e out of v is taken
  // with probability walks(e) / Σ_{e'} walks(e') — the paper's p(e) — where
  // stopping at a final state counts as one walk. Returns the symbol
  // sequence; empty optional if the language (within the bound) is empty.
  bool sample_uniform_walk(const Dfa& dfa, util::Pcg32& rng,
                           std::vector<Symbol>& out) const;

 private:
  // table_[l * num_states + v]
  std::vector<double> table_;
  std::size_t num_states_;
  std::size_t max_len_;
  StateId start_;
};

}  // namespace relm::automata
