#pragma once

#include <string_view>

#include "automata/regex_ast.hpp"

namespace relm::automata {

// Parses the regular-expression dialect of Table 2 (plus the standard sugar
// the paper's queries use) into an AST. Supported syntax:
//
//   literals            abc
//   grouping            (r)
//   disjunction         r1|r2
//   repetition          r*  r+  r?  r{m}  r{m,}  r{m,n}
//   any char            .            (printable ASCII)
//   classes             [a-zA-Z0-9]  [^abc]   (negation over printable ASCII + \t\n\r)
//   escapes             \d \w \s \D \W \S \n \t \r \f \v \0 \xNN
//   literal escapes     \. \* \+ \? \( \) \[ \] \{ \} \| \\ \- \^ \$ \/ \# \%
//
// Throws relm::RegexError on malformed input.
RegexPtr parse_regex(std::string_view pattern);

}  // namespace relm::automata
