#include "automata/levenshtein.hpp"

#include <algorithm>
#include <string_view>
#include <vector>

#include "automata/determinize.hpp"
#include "util/errors.hpp"

namespace relm::automata {

Dfa levenshtein_expand(const Dfa& language, int distance, const ByteSet& alphabet) {
  if (distance < 0) throw relm::Error("levenshtein distance must be >= 0");
  if (language.num_symbols() != 256) {
    throw relm::Error("levenshtein_expand requires a byte-alphabet automaton");
  }
  const std::size_t n = language.num_states();
  const int budgets = distance + 1;

  // NFA state (q, e) = "source automaton at q, having spent e edits".
  Nfa nfa(256);
  std::vector<StateId> ids(n * budgets);
  for (std::size_t q = 0; q < n; ++q) {
    for (int e = 0; e < budgets; ++e) {
      ids[q * budgets + e] = nfa.add_state(language.is_final(static_cast<StateId>(q)));
    }
  }
  auto id = [&](StateId q, int e) { return ids[q * budgets + e]; };

  std::vector<unsigned> alpha;
  for (unsigned b = 0; b < 256; ++b) {
    if (alphabet.test(b)) alpha.push_back(b);
  }

  for (StateId q = 0; q < n; ++q) {
    for (int e = 0; e < budgets; ++e) {
      // Exact match: consume the edge's own symbol.
      for (const Edge& edge : language.edges(q)) {
        nfa.add_edge(id(q, e), edge.symbol, id(edge.to, e));
      }
      if (e + 1 < budgets) {
        // Insertion: output has an extra character; consume any alphabet
        // symbol without advancing in the source automaton.
        for (unsigned b : alpha) {
          nfa.add_edge(id(q, e), b, id(q, e + 1));
        }
        for (const Edge& edge : language.edges(q)) {
          // Deletion: a source character is dropped from the output; advance
          // without consuming (epsilon).
          nfa.add_edge(id(q, e), kEpsilon, id(edge.to, e + 1));
          // Substitution: advance while consuming any alphabet symbol
          // (consuming the matching symbol is harmless — it only wastes one
          // unit of budget on a path a cheaper exact-match path also covers).
          for (unsigned b : alpha) {
            nfa.add_edge(id(q, e), b, id(edge.to, e + 1));
          }
        }
      }
    }
  }
  nfa.set_start(id(language.start(), 0));
  return minimize(determinize(nfa));
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace relm::automata
