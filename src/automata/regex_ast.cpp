#include "automata/regex_ast.hpp"

namespace relm::automata {

RegexPtr RegexNode::empty_set() {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexKind::kEmptySet;
  return node;
}

RegexPtr RegexNode::epsilon() {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexKind::kEpsilon;
  return node;
}

RegexPtr RegexNode::char_class_node(ByteSet set) {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexKind::kCharClass;
  node->char_class = set;
  return node;
}

RegexPtr RegexNode::literal(unsigned char c) {
  ByteSet set;
  set.set(c);
  return char_class_node(set);
}

RegexPtr RegexNode::literal_string(std::string_view text) {
  std::vector<RegexPtr> parts;
  parts.reserve(text.size());
  for (unsigned char c : text) parts.push_back(literal(c));
  return concat(std::move(parts));
}

RegexPtr RegexNode::concat(std::vector<RegexPtr> children) {
  if (children.empty()) return epsilon();
  if (children.size() == 1) return std::move(children.front());
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexKind::kConcat;
  node->children = std::move(children);
  return node;
}

RegexPtr RegexNode::alternate(std::vector<RegexPtr> children) {
  if (children.empty()) return empty_set();
  if (children.size() == 1) return std::move(children.front());
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexKind::kAlternate;
  node->children = std::move(children);
  return node;
}

RegexPtr RegexNode::repeat(RegexPtr child, int min, int max) {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexKind::kRepeat;
  node->children.push_back(std::move(child));
  node->repeat_min = min;
  node->repeat_max = max;
  return node;
}

RegexPtr RegexNode::intersect(std::vector<RegexPtr> children) {
  if (children.size() == 1) return std::move(children.front());
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexKind::kIntersect;
  node->children = std::move(children);
  return node;
}

RegexPtr RegexNode::complement(RegexPtr child) {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexKind::kComplement;
  node->children.push_back(std::move(child));
  return node;
}

RegexPtr RegexNode::difference(RegexPtr left, RegexPtr right) {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexKind::kDifference;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

bool has_boolean_ops(const RegexNode& node) {
  if (node.kind == RegexKind::kIntersect ||
      node.kind == RegexKind::kComplement ||
      node.kind == RegexKind::kDifference) {
    return true;
  }
  for (const auto& child : node.children) {
    if (has_boolean_ops(*child)) return true;
  }
  return false;
}

RegexPtr RegexNode::clone() const {
  auto node = std::make_unique<RegexNode>();
  node->kind = kind;
  node->char_class = char_class;
  node->repeat_min = repeat_min;
  node->repeat_max = repeat_max;
  node->children.reserve(children.size());
  for (const auto& child : children) node->children.push_back(child->clone());
  return node;
}

ByteSet printable_ascii() {
  ByteSet set;
  for (int c = 0x20; c <= 0x7e; ++c) set.set(c);
  return set;
}

ByteSet printable_ascii_and_ws() {
  ByteSet set = printable_ascii();
  set.set('\t');
  set.set('\n');
  set.set('\r');
  return set;
}

ByteSet digit_set() {
  ByteSet set;
  for (int c = '0'; c <= '9'; ++c) set.set(c);
  return set;
}

ByteSet word_set() {
  ByteSet set = digit_set();
  for (int c = 'a'; c <= 'z'; ++c) set.set(c);
  for (int c = 'A'; c <= 'Z'; ++c) set.set(c);
  set.set('_');
  return set;
}

ByteSet space_set() {
  ByteSet set;
  for (char c : {' ', '\t', '\n', '\r', '\f', '\v'}) set.set(static_cast<unsigned char>(c));
  return set;
}

}  // namespace relm::automata
