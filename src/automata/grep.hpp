#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "automata/automaton.hpp"

namespace relm::automata {

// A substring match of a pattern DFA inside a text.
struct GrepMatch {
  std::size_t offset;  // byte offset of the match start
  std::size_t length;  // match length (leftmost-longest)
};

// Scans `text` for non-overlapping, leftmost-longest substring matches of the
// pattern automaton. This is the in-process equivalent of the `grep` step the
// toxicity pipeline uses over The Pile (§4.3): the corpus is scanned for the
// insult lexicon and the hits seed extraction queries.
//
// `pattern` must be a byte-alphabet DFA. Matches of length zero are skipped.
std::vector<GrepMatch> grep_all(const Dfa& pattern, std::string_view text);

// Convenience: the matched substrings themselves.
std::vector<std::string> grep_strings(const Dfa& pattern, std::string_view text);

}  // namespace relm::automata
