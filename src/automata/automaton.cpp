#include "automata/automaton.hpp"

#include <algorithm>
#include <string_view>

namespace relm::automata {

void Dfa::add_edge(StateId from, Symbol symbol, StateId to) {
  auto& list = edges_[from];
  auto it = std::lower_bound(
      list.begin(), list.end(), symbol,
      [](const Edge& e, Symbol s) { return e.symbol < s; });
  if (it != list.end() && it->symbol == symbol) {
    it->to = to;
  } else {
    list.insert(it, Edge{symbol, to});
  }
}

StateId Dfa::next(StateId from, Symbol symbol) const {
  const auto& list = edges_[from];
  auto it = std::lower_bound(
      list.begin(), list.end(), symbol,
      [](const Edge& e, Symbol s) { return e.symbol < s; });
  if (it != list.end() && it->symbol == symbol) return it->to;
  return kNoState;
}

std::size_t Dfa::num_edges() const {
  std::size_t n = 0;
  for (const auto& list : edges_) n += list.size();
  return n;
}

bool Dfa::accepts(std::span<const Symbol> input) const {
  StateId state = start_;
  for (Symbol s : input) {
    state = next(state, s);
    if (state == kNoState) return false;
  }
  return is_final(state);
}

bool Dfa::accepts_bytes(std::string_view input) const {
  StateId state = start_;
  for (unsigned char c : input) {
    state = next(state, static_cast<Symbol>(c));
    if (state == kNoState) return false;
  }
  return is_final(state);
}

Dfa Dfa::from_parts(Symbol num_symbols, StateId start,
                    std::vector<std::vector<Edge>> edge_lists,
                    std::vector<bool> final_states) {
  Dfa dfa(num_symbols);
  dfa.start_ = start;
  dfa.edges_ = std::move(edge_lists);
  dfa.final_ = std::move(final_states);
  dfa.final_.resize(dfa.edges_.size());
  return dfa;
}

bool operator==(const Dfa& a, const Dfa& b) {
  return a.num_symbols_ == b.num_symbols_ && a.start_ == b.start_ &&
         a.final_ == b.final_ && a.edges_ == b.edges_;
}

}  // namespace relm::automata
