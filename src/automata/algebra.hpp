#pragma once

#include <cstddef>

#include "automata/automaton.hpp"
#include "automata/regex_ast.hpp"

namespace relm::automata {

// Compiler for the boolean query algebra (`&`, `~`/`!`, `-`): turns any
// regex AST — boolean nodes included — into a character-level DFA.
//
// Boolean subtrees are flattened into an expression tree whose leaves are
// the maximal boolean-free subtrees (compiled to Thompson NFAs) and whose
// internal nodes are intersection / complement / difference. The whole tree
// is then evaluated by ONE combined product/subset construction: a product
// state is a tuple of per-leaf epsilon-closed NFA subsets (the empty subset
// is a live "dead" value — required under complement), acceptance is the
// boolean expression evaluated over per-leaf finality, and only symbols
// that can still lead to acceptance are explored:
//
//   symbols(leaf)      = out-symbols of the leaf's current subset
//   symbols(A & B)     = symbols(A) ∩ symbols(B)
//   symbols(~A)        = universe
//   symbols(A - B)     = symbols(A)
//
// so `A & !B` materializes only the states of B's subset space that A's
// reachability actually visits — on-the-fly determinization — instead of
// B's full exponential subset space.
//
// Semantics: `~r` is complement RELATIVE to `universe`^* (default printable
// ASCII plus \t \n \r, matching `[^...]`); `r - s` is exact set difference
// L(r) \ L(s) with no universe restriction.
struct AlgebraOptions {
  // Maximum DFA states materialized, summed over every subset/product
  // construction in the compile. Exceeding it throws relm::StateBudgetError.
  // 0 = unlimited.
  std::size_t state_budget = 0;

  // Lazy (on-the-fly, default) vs eager evaluation. Eager fully determinizes
  // every leaf and composes with the classic DFA ops bottom-up — same
  // language, but complements pay for their full subset space; it exists as
  // the reference/benchmark baseline for the lazy path.
  bool lazy = true;

  // Complement universe. Default-constructed to printable_ascii_and_ws().
  ByteSet universe = kDefaultUniverse();

  static ByteSet kDefaultUniverse();
};

// Compiles an AST to a trim (not minimized) DFA over the byte alphabet.
// Boolean-free trees take the classic thompson+determinize path (budgeted);
// results are identical to compile_regex_unminimized for such trees.
Dfa compile_ast(const RegexNode& root, const AlgebraOptions& options = {});

// Default determinization state budget when RELM_DETERMINIZE_BUDGET is
// unset: generous enough for every normal query, small enough to turn a
// pathological complement blow-up into an error instead of an OOM.
inline constexpr std::size_t kDefaultDeterminizeBudget = 1u << 20;

// Resolves the budget from the RELM_DETERMINIZE_BUDGET environment variable
// ("0" = unlimited), falling back to kDefaultDeterminizeBudget.
std::size_t determinize_budget_from_env();

// Resolves the evaluation mode from RELM_DETERMINIZE_MODE ("eager" selects
// the eager reference path; anything else, including unset, is lazy).
bool lazy_determinize_from_env();

}  // namespace relm::automata
