# Central compile/link flags for every relm target: warnings, optional
# -Werror, sanitizers, and debug-check toggles. The flags live on one
# INTERFACE target that relm_util links PUBLIC — every library, tool, test,
# bench, and example in the tree links (transitively) against relm_util, so
# the whole build inherits a single consistent flag set. Each src/ subsystem
# also links it directly so a future dependency reshuffle cannot silently
# drop the flags.
#
# Options (also surfaced as CMake presets, see CMakePresets.json):
#   RELM_SANITIZE  semicolon-separated sanitizer list: "address;undefined",
#                  "thread", or "memory" (memory requires clang). Empty = off.
#   RELM_WERROR    promote warnings to errors.
#   RELM_DCHECKS   force-enable RELM_DCHECK assertions even with NDEBUG
#                  (they are on by default in Debug builds; see
#                  util/errors.hpp and docs/STATIC_ANALYSIS.md).
#   RELM_COVERAGE  instrument for line coverage (gcc --coverage / gcov);
#                  pair with CMAKE_BUILD_TYPE=Debug and report with gcovr.
#   RELM_THREAD_SAFETY
#                  clang-only: compile with -Wthread-safety promoted to an
#                  error, proving the lock annotations in util/sync.hpp
#                  cover every access to guarded data (preset: tsa).

set(RELM_SANITIZE "" CACHE STRING
    "Sanitizers to instrument with (address;undefined | thread | memory)")
option(RELM_WERROR "Treat compiler warnings as errors" OFF)
option(RELM_DCHECKS "Enable RELM_DCHECK assertions regardless of NDEBUG" OFF)
option(RELM_COVERAGE "Instrument for gcov line coverage" OFF)
option(RELM_THREAD_SAFETY
       "Enable clang thread-safety analysis as errors (requires clang)" OFF)

add_library(relm_build_flags INTERFACE)

target_compile_options(relm_build_flags INTERFACE -Wall -Wextra)
if(RELM_WERROR)
  target_compile_options(relm_build_flags INTERFACE -Werror)
endif()

if(RELM_DCHECKS)
  target_compile_definitions(relm_build_flags INTERFACE RELM_ENABLE_DCHECKS=1)
endif()

if(RELM_COVERAGE)
  target_compile_options(relm_build_flags INTERFACE --coverage -O0)
  target_link_options(relm_build_flags INTERFACE --coverage)
  message(STATUS "relm: coverage instrumentation enabled")
endif()

if(RELM_THREAD_SAFETY)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
      "RELM_THREAD_SAFETY requires clang (gcc has no -Wthread-safety; the "
      "RELM_* capability attributes expand to nothing there); configure "
      "with -DCMAKE_CXX_COMPILER=clang++")
  endif()
  target_compile_options(relm_build_flags INTERFACE
    -Wthread-safety -Werror=thread-safety)
  message(STATUS "relm: clang thread-safety analysis enabled (as errors)")
endif()

if(RELM_SANITIZE)
  string(REPLACE ";" "," _relm_sanitize_csv "${RELM_SANITIZE}")
  if("${_relm_sanitize_csv}" MATCHES "memory" AND
     NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
      "RELM_SANITIZE=memory requires clang (MemorySanitizer is not "
      "implemented in GCC); configure with -DCMAKE_CXX_COMPILER=clang++")
  endif()
  if("${_relm_sanitize_csv}" MATCHES "thread" AND
     "${_relm_sanitize_csv}" MATCHES "address")
    message(FATAL_ERROR "thread and address sanitizers cannot be combined")
  endif()
  target_compile_options(relm_build_flags INTERFACE
    -fsanitize=${_relm_sanitize_csv}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all)
  target_link_options(relm_build_flags INTERFACE
    -fsanitize=${_relm_sanitize_csv}
    -fno-sanitize-recover=all)
  message(STATUS "relm: sanitizers enabled: ${_relm_sanitize_csv}")
endif()
