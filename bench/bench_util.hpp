#pragma once

// Shared helpers for the figure/table reproduction binaries. Each binary
// rebuilds the experiment world deterministically (seeded corpus, tokenizer,
// models), runs one experiment from src/experiments, and prints the same
// rows/series the paper's figure reports, alongside the paper's values where
// the paper states them. Scale with RELM_BENCH_SCALE (default 1.0).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/setup.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace relm::bench {

// True when RELM_BENCH_JSON asks for machine-readable output lines.
inline bool bench_json_enabled() {
  const char* v = std::getenv("RELM_BENCH_JSON");
  return v && *v && std::string(v) != "0";
}

// Serialized metrics registry snapshot (counters, gauges, per-phase latency
// histograms) for embedding in a BENCH_JSON line.
inline std::string metrics_json() {
  return obs::Registry::instance().snapshot().to_json();
}

// Appends the standard machine-readable footer: one BENCH_JSON line with the
// binary's name, wall time, and the full metrics snapshot accumulated over
// the run. No-op unless RELM_BENCH_JSON is set.
inline void print_bench_json_footer(const std::string& bench,
                                    double wall_seconds) {
  if (!bench_json_enabled()) return;
  std::printf("BENCH_JSON {\"bench\":\"%s\",\"scale\":%.3f,"
              "\"wall_seconds\":%.4f,\"metrics\":%s}\n",
              bench.c_str(), experiments::bench_scale_from_env(), wall_seconds,
              metrics_json().c_str());
}

// Thread-count sweep list from RELM_BENCH_THREADS (space- or comma-
// separated, e.g. "1 2 4 8"); scripts/bench.sh sets the default. Malformed
// or non-positive entries are skipped; an empty result falls back to {1}.
inline std::vector<std::size_t> bench_threads_from_env(
    const char* fallback = "1 2 4 8") {
  const char* env = std::getenv("RELM_BENCH_THREADS");
  std::string spec = env && *env ? env : fallback;
  for (char& c : spec) {
    if (c == ',') c = ' ';
  }
  std::vector<std::size_t> threads;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    while (pos < spec.size() && spec[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < spec.size() && spec[end] != ' ') ++end;
    if (end > pos) {
      char* stop = nullptr;
      const std::string item = spec.substr(pos, end - pos);
      const unsigned long v = std::strtoul(item.c_str(), &stop, 10);
      if (stop && *stop == '\0' && v > 0) {
        threads.push_back(static_cast<std::size_t>(v));
      }
    }
    pos = end;
  }
  if (threads.empty()) threads.push_back(1);
  return threads;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("=============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("=============================================================\n");
}

inline void print_footnote(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

inline experiments::World build_bench_world() {
  util::Timer timer;
  experiments::World world = experiments::build_world_from_env();
  std::printf("[setup] corpus=%zu docs, vocab=%zu, scale=%.2f (%.1fs)\n\n",
              world.corpus.documents.size(), world.tokenizer->vocab_size(),
              experiments::bench_scale_from_env(), timer.seconds());
  return world;
}

}  // namespace relm::bench
