#pragma once

// Shared helpers for the figure/table reproduction binaries. Each binary
// rebuilds the experiment world deterministically (seeded corpus, tokenizer,
// models), runs one experiment from src/experiments, and prints the same
// rows/series the paper's figure reports, alongside the paper's values where
// the paper states them. Scale with RELM_BENCH_SCALE (default 1.0).

#include <cstdio>
#include <string>

#include "experiments/setup.hpp"
#include "util/logging.hpp"

namespace relm::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("=============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("=============================================================\n");
}

inline void print_footnote(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

inline experiments::World build_bench_world() {
  util::Timer timer;
  experiments::World world = experiments::build_world_from_env();
  std::printf("[setup] corpus=%zu docs, vocab=%zu, scale=%.2f (%.1fs)\n\n",
              world.corpus.documents.size(), world.tokenizer->vocab_size(),
              experiments::bench_scale_from_env(), timer.seconds());
  return world;
}

}  // namespace relm::bench
