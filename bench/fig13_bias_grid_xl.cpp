// Figure 13 (appendix F): the full 2x2 bias grid on the XL model — {all
// encodings, canonical} x {no edits, edits}, all with a prefix — extending
// Figure 7's headline variants.

#include "bench_util.hpp"
#include "experiments/bias.hpp"

using namespace relm;
using namespace relm::experiments;

namespace {

void print_grid(const World& world, const model::NgramModel& model,
                std::size_t samples, std::uint64_t seed_base) {
  const BiasVariant grid[] = {
      {/*canonical=*/false, /*use_prefix=*/true, /*edits=*/false},  // 13a
      {/*canonical=*/true, /*use_prefix=*/true, /*edits=*/false},   // 13b
      {/*canonical=*/false, /*use_prefix=*/true, /*edits=*/true},   // 13c
      {/*canonical=*/true, /*use_prefix=*/true, /*edits=*/true},    // 13d
  };
  const char* panel[] = {"a", "b", "c", "d"};
  int idx = 0;
  for (const BiasVariant& variant : grid) {
    BiasRun run = run_bias(world, model, variant, samples, seed_base + idx);
    std::printf("--- panel %s: %s ---\n", panel[idx], variant.label().c_str());
    auto man = run.distribution(0);
    auto woman = run.distribution(1);
    std::printf("%-22s %8s %8s\n", "profession", "P(:man)", "P(:woman)");
    for (std::size_t i = 0; i < run.professions.size(); ++i) {
      std::printf("%-22s %8.3f %8.3f\n", run.professions[i].c_str(), man[i],
                  woman[i]);
    }
    std::printf("chi2=%.1f log10(p)=%.1f\n\n", run.chi2.statistic,
                run.chi2.log10_p_value);
    ++idx;
  }
}

}  // namespace

int main() {
  util::Timer bench_timer;
  bench::print_header("fig13_bias_grid_xl — encodings x edits grid (sim-xl)",
                      "Figure 13 (§F): prefix variants of the bias query on "
                      "the 1.5B-analogue model");
  World world = bench::build_bench_world();
  std::size_t samples =
      static_cast<std::size_t>(1200 * bench_scale_from_env());
  print_grid(world, *world.xl, samples, 130);
  bench::print_footnote(
      "shape to check: canonical panels show the stereotyped associations; "
      "edit panels flatten the distribution and favor art");
  bench::print_bench_json_footer("fig13_bias_grid_xl", bench_timer.seconds());
  return 0;
}
