// fig_generate: aggregate throughput of the batched multi-stream generation
// engine (src/core/generate/) on the paper's URL sampling workload, swept
// over streams {1, 8, 64} x RELM_BENCH_THREADS. The baseline is serial
// stream-at-a-time: the same streams run to completion one engine at a time
// on one thread — what a caller without the engine would do. The engine's
// determinism invariant is enforced, not just measured: every per-stream
// output in every batched configuration must be byte-identical to the serial
// run, or the binary exits non-zero. With RELM_BENCH_JSON=1 a
// machine-readable BENCH_JSON line is appended for scripts/bench.sh;
// scripts/bench_compare.py gates streams_64 tokens_per_sec as a
// higher-is-better metric.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/compiled_query.hpp"
#include "core/generate/generate_engine.hpp"
#include "experiments/setup.hpp"
#include "model/ngram_model.hpp"
#include "util/thread_pool.hpp"

using namespace relm;
using core::generate::GenerateEngine;
using core::generate::StreamSpec;

namespace {

constexpr std::uint64_t kMasterSeed = 1729;

// Thread-count-independent fingerprint of every stream's full output.
std::string stream_fingerprint(const GenerateEngine& engine,
                               GenerateEngine::StreamId id) {
  std::string fp = std::to_string(id);
  fp += '|';
  fp += core::generate::to_string(engine.state(id));
  if (const auto& r = engine.result(id)) {
    fp += '|';
    fp += r->text;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "|%.17g|", r->log_prob);
    fp += buf;
    for (tokenizer::TokenId t : r->tokens) {
      fp += std::to_string(t);
      fp += ',';
    }
  }
  fp += '\n';
  return fp;
}

core::SimpleSearchQuery url_sampling_query() {
  core::SimpleSearchQuery query;
  query.query_string.prefix_str = "https://www.";
  query.query_string.query_str = experiments::url_pattern();
  query.search_strategy = core::SearchStrategy::kRandomSampling;
  query.tokenization_strategy = core::TokenizationStrategy::kCanonicalTokens;
  query.decoding.top_k = 40;
  query.sequence_length = 24;
  return query;
}

struct GenRun {
  std::string fingerprint;  // concatenated per-stream outputs, id order
  std::size_t tokens = 0;
  std::size_t llm_calls = 0;
  std::size_t dedup_hits = 0;
  double occupancy = 0.0;
  double wall = 0.0;  // filled by the caller (median over passes)
};

// All `streams` in ONE engine, one batched model call per tick.
GenRun run_batched(const model::LanguageModel& model,
                   const core::CompiledQuery& compiled,
                   const core::SimpleSearchQuery& query, std::size_t streams,
                   double* wall_out) {
  GenerateEngine engine(model, compiled, query, kMasterSeed);
  for (std::size_t i = 0; i < streams; ++i) engine.add_stream();
  util::Timer timer;
  engine.run();
  *wall_out = timer.seconds();
  GenRun out;
  for (GenerateEngine::StreamId id = 0; id < engine.num_streams(); ++id) {
    out.fingerprint += stream_fingerprint(engine, id);
  }
  out.tokens = engine.stats().tokens_emitted;
  out.llm_calls = engine.stats().llm_calls;
  out.dedup_hits = engine.stats().batch_dedup_hits;
  out.occupancy = engine.stats().mean_tick_occupancy();
  return out;
}

// Serial stream-at-a-time baseline: the same streams (same rng_stream
// indices, so byte-identical outputs), each in its own single-stream engine,
// run to completion one after another. Engine construction stays outside the
// timer on both sides: the comparison is generation, not setup.
GenRun run_serial(const model::LanguageModel& model,
                  const core::CompiledQuery& compiled,
                  const core::SimpleSearchQuery& query, std::size_t streams,
                  double* wall_out) {
  std::deque<GenerateEngine> engines;
  for (std::size_t i = 0; i < streams; ++i) {
    GenerateEngine& engine =
        engines.emplace_back(model, compiled, query, kMasterSeed);
    StreamSpec spec;
    spec.rng_stream = i;
    engine.add_stream(spec);
  }
  util::Timer timer;
  for (GenerateEngine& engine : engines) engine.run();
  *wall_out = timer.seconds();
  GenRun out;
  for (std::size_t i = 0; i < streams; ++i) {
    // Re-key the solo stream (always id 0) by its rng_stream index so the
    // fingerprint lines up with the batched run's id order.
    std::string fp = stream_fingerprint(engines[i], 0);
    out.fingerprint += std::to_string(i) + fp.substr(1);
    out.tokens += engines[i].stats().tokens_emitted;
    out.llm_calls += engines[i].stats().llm_calls;
  }
  out.occupancy = 1.0;
  return out;
}

constexpr int kPasses = 3;

double median(std::array<double, kPasses>& walls) {
  std::sort(walls.begin(), walls.end());
  return walls[kPasses / 2];
}

}  // namespace

int main() {
  bench::print_header(
      "fig_generate — batched multi-stream generation throughput",
      "engine extension of §3.3 (batched test-vector scheduling), on the "
      "§4.1 URL workload");
  experiments::World world = bench::build_bench_world();

  const core::SimpleSearchQuery query = url_sampling_query();
  const core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world.tokenizer);

  const std::vector<std::size_t> stream_counts{1, 8, 64};
  const std::vector<std::size_t> threads_list =
      bench::bench_threads_from_env("1 4 8");

  // Interleaved passes (see fig06): every configuration samples early,
  // middle, and late epochs of the process, and per-configuration medians
  // keep the ratios drift-free. Outputs are deterministic across passes;
  // only the clock varies.
  struct Config {
    std::size_t streams;
    std::size_t threads;  // 0 = serial stream-at-a-time baseline
    GenRun run;
    std::array<double, kPasses> walls{};
  };
  std::vector<Config> configs;
  for (std::size_t s : stream_counts) {
    configs.push_back({s, 0, {}, {}});
    for (std::size_t t : threads_list) configs.push_back({s, t, {}, {}});
  }

  for (int pass = 0; pass < kPasses; ++pass) {
    for (Config& c : configs) {
      // A fresh logit cache per run: no configuration warms another's.
      model::CachingModel cached(world.xl, /*capacity=*/1 << 16);
      double wall = 0.0;
      GenRun run;
      if (c.threads == 0) {
        util::ThreadPool::set_shared_threads(1);
        run = run_serial(cached, compiled, query, c.streams, &wall);
      } else {
        util::ThreadPool::set_shared_threads(c.threads);
        run = run_batched(cached, compiled, query, c.streams, &wall);
      }
      c.walls[static_cast<std::size_t>(pass)] = wall;
      if (pass == kPasses - 1) c.run = std::move(run);
    }
  }
  util::ThreadPool::set_shared_threads(1);
  for (Config& c : configs) c.run.wall = median(c.walls);

  // Per-stream outputs must be byte-identical across every configuration
  // with the same stream count — the engine's core invariant, checked here
  // against the serial baseline's fingerprint.
  bool deterministic = true;
  auto serial_of = [&](std::size_t streams) -> const Config& {
    for (const Config& c : configs) {
      if (c.streams == streams && c.threads == 0) return c;
    }
    std::abort();  // unreachable: a baseline exists per stream count
  };

  std::printf("%-10s %-10s %10s %12s %12s %12s %14s %10s\n", "streams",
              "threads", "tokens", "llm_calls", "dedup_hits", "occupancy",
              "tokens/sec", "speedup");
  for (const Config& c : configs) {
    const Config& base = serial_of(c.streams);
    if (c.threads != 0 && c.run.fingerprint != base.run.fingerprint) {
      deterministic = false;
    }
    const double tps = c.run.wall > 0
                           ? static_cast<double>(c.run.tokens) / c.run.wall
                           : 0.0;
    const double base_tps =
        base.run.wall > 0
            ? static_cast<double>(base.run.tokens) / base.run.wall
            : 0.0;
    std::printf("%-10zu %-10s %10zu %12zu %12zu %12.1f %14.0f %9.2fx\n",
                c.streams, c.threads == 0 ? "serial"
                                          : std::to_string(c.threads).c_str(),
                c.run.tokens, c.run.llm_calls, c.run.dedup_hits,
                c.run.occupancy, tps, base_tps > 0 ? tps / base_tps : 0.0);
  }
  std::printf("\n[generate] per-stream outputs byte-identical to the serial "
              "baseline across the sweep: %s\n",
              deterministic ? "yes" : "NO (BUG)");

  if (bench::bench_json_enabled()) {
    std::string sections;
    for (const Config& c : configs) {
      const Config& base = serial_of(c.streams);
      const double tps = c.run.wall > 0
                             ? static_cast<double>(c.run.tokens) / c.run.wall
                             : 0.0;
      const double base_tps =
          base.run.wall > 0
              ? static_cast<double>(base.run.tokens) / base.run.wall
              : 0.0;
      char buf[320];
      if (c.threads == 0) {
        std::snprintf(buf, sizeof(buf),
                      "\"serial_streams_%zu\":{\"wall_seconds\":%.4f,"
                      "\"tokens\":%zu,\"tokens_per_sec\":%.1f},",
                      c.streams, c.run.wall, c.run.tokens, tps);
      } else {
        std::snprintf(
            buf, sizeof(buf),
            "\"streams_%zu_threads_%zu\":{\"wall_seconds\":%.4f,"
            "\"tokens\":%zu,\"tokens_per_sec\":%.1f,"
            "\"batch_dedup_hits\":%zu,\"tick_occupancy_mean\":%.2f,"
            "\"speedup_vs_serial\":%.3f},",
            c.streams, c.threads, c.run.wall, c.run.tokens, tps,
            c.run.dedup_hits, c.run.occupancy,
            base_tps > 0 ? tps / base_tps : 0.0);
      }
      sections += buf;
    }
    std::printf("BENCH_JSON {\"bench\":\"fig_generate\",\"scale\":%.3f,"
                "%s\"deterministic_across_sweep\":%s,\"metrics\":%s}\n",
                experiments::bench_scale_from_env(), sections.c_str(),
                deterministic ? "true" : "false",
                bench::metrics_json().c_str());
  }

  return deterministic ? 0 : 1;
}
