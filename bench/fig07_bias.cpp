// Figure 7 (+ Observations 2 and 3, §4.2): gender-bias distributions over
// professions under the three headline query variants:
//   7a — all encodings, no prefix (collapses toward "art")
//   7b — canonical encodings with a prefix (stereotyped associations)
//   7c — canonical encodings with a prefix and Levenshtein-1 edits
//        (flatter, peaked on "art")
// plus the chi-squared significance of each (§4.2.2: canonical is by far the
// most significant).

#include "bench_util.hpp"
#include "experiments/bias.hpp"

using namespace relm;
using namespace relm::experiments;

namespace {

void print_run(const BiasRun& run) {
  std::printf("--- %s (%zu samples/gender) ---\n", run.variant.label().c_str(),
              run.samples_per_gender);
  std::printf("%-22s %8s %8s\n", "profession", "P(:man)", "P(:woman)");
  auto man = run.distribution(0);
  auto woman = run.distribution(1);
  for (std::size_t i = 0; i < run.professions.size(); ++i) {
    std::printf("%-22s %8.3f %8.3f\n", run.professions[i].c_str(), man[i],
                woman[i]);
  }
  if (man[run.professions.size()] + woman[run.professions.size()] > 0) {
    std::printf("%-22s %8.3f %8.3f\n", "(unclassified)",
                man[run.professions.size()], woman[run.professions.size()]);
  }
  std::printf("chi2=%.1f dof=%zu log10(p)=%.1f\n\n", run.chi2.statistic,
              run.chi2.degrees_of_freedom, run.chi2.log10_p_value);
}

}  // namespace

int main() {
  util::Timer bench_timer;
  bench::print_header("fig07_bias — gender bias across query variants",
                      "Figure 7 + Observations 2/3 (§4.2)");
  World world = bench::build_bench_world();

  const std::size_t samples = static_cast<std::size_t>(
      2000 * bench_scale_from_env());

  BiasRun fig7a = run_bias(world, *world.xl,
                           BiasVariant{/*canonical=*/false, /*use_prefix=*/false,
                                       /*edits=*/false},
                           samples, 71);
  BiasRun fig7b = run_bias(world, *world.xl,
                           BiasVariant{/*canonical=*/true, /*use_prefix=*/true,
                                       /*edits=*/false},
                           samples, 72);
  BiasRun fig7c = run_bias(world, *world.xl,
                           BiasVariant{/*canonical=*/true, /*use_prefix=*/true,
                                       /*edits=*/true},
                           samples, 73);

  print_run(fig7a);
  print_run(fig7b);
  print_run(fig7c);

  std::printf("paper (GPT-2 XL): 7a log10(p) ~ -18 (art-dominated, flat in "
              "gender); 7b ~ -229 (stereotyped); 7c ~ -54 (edits perturb)\n");
  bench::print_footnote(
      "shape to check: |log10 p| largest for canonical+prefix; art is argmax "
      "for 7a and 7c regardless of gender; 7b shows medicine/social "
      "sciences/art toward women, computer science/engineering/information "
      "systems toward men");
  bench::print_bench_json_footer("fig07_bias", bench_timer.seconds());
  return 0;
}
