// Figure 8 (§4.3): toxic-content extraction.
//   8a — prompted: extraction success per grep-derived prompt; all encodings
//        + Levenshtein-1 edits unlock ~2.5x more extractions than the
//        canonical baseline (91% vs 27-37% in the paper).
//   8b — unprompted: the *volume* of extracted token sequences per input
//        (capped), where edits + encodings yield a ~93x blow-up.

#include "bench_util.hpp"
#include "experiments/toxicity.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  util::Timer bench_timer;
  bench::print_header("fig08_toxicity — prompted and unprompted extraction",
                      "Figure 8 + Observations 4/5 (§4.3)");
  World world = bench::build_bench_world();

  const std::size_t max_cases = static_cast<std::size_t>(
      60 * std::max(1.0, bench_scale_from_env()));
  auto cases = derive_toxicity_cases(world, max_cases);
  std::printf("[grep] lexicon scan produced %zu prompts from the corpus\n\n",
              cases.size());

  ToxicitySettings baseline;  // canonical encodings, no edits
  ToxicitySettings relm_full;
  relm_full.edits = true;
  relm_full.all_encodings = true;

  // --- Figure 8a: prompted --------------------------------------------------
  PromptedResult prompted_base = run_prompted_toxicity(world, *world.xl, cases, baseline);
  PromptedResult prompted_relm = run_prompted_toxicity(world, *world.xl, cases, relm_full);
  std::printf("Figure 8a (prompted extraction success)\n");
  std::printf("%-26s %10s %10s %10s\n", "setting", "attempted", "extracted", "rate_%");
  std::printf("%-26s %10zu %10zu %10.1f\n", "baseline (canonical)",
              prompted_base.attempted, prompted_base.extracted,
              100 * prompted_base.success_rate());
  std::printf("%-26s %10zu %10zu %10.1f\n", "relm (encodings+edits)",
              prompted_relm.attempted, prompted_relm.extracted,
              100 * prompted_relm.success_rate());
  double ratio = prompted_base.extracted
                     ? static_cast<double>(prompted_relm.extracted) /
                           prompted_base.extracted
                     : 0.0;
  std::printf("ratio: %.2fx (paper: 2.5x; 91%% vs 27-37%%)\n\n", ratio);

  // --- Figure 8b: unprompted ------------------------------------------------
  UnpromptedResult unprompted_base =
      run_unprompted_toxicity(world, *world.xl, cases, baseline);
  UnpromptedResult unprompted_relm =
      run_unprompted_toxicity(world, *world.xl, cases, relm_full);
  std::printf("Figure 8b (unprompted extraction volume, cap %zu/input)\n",
              baseline.sequence_cap);
  std::printf("%-26s %10s %14s %12s %14s\n", "setting", "inputs",
              "with_extract", "sequences", "seq_per_input");
  std::printf("%-26s %10zu %14zu %12zu %14.2f\n", "baseline (canonical)",
              unprompted_base.attempted, unprompted_base.inputs_with_extraction,
              unprompted_base.total_sequences,
              unprompted_base.sequences_per_input());
  std::printf("%-26s %10zu %14zu %12zu %14.2f\n", "relm (encodings+edits)",
              unprompted_relm.attempted, unprompted_relm.inputs_with_extraction,
              unprompted_relm.total_sequences,
              unprompted_relm.sequences_per_input());
  double volume_ratio =
      unprompted_base.total_sequences
          ? static_cast<double>(unprompted_relm.total_sequences) /
                unprompted_base.total_sequences
          : 0.0;
  std::printf("volume ratio: %.0fx (paper: ~93x more sequences; baseline "
              "extracts 8-18%% of inputs)\n",
              volume_ratio);
  bench::print_footnote(
      "paper shape: prompting helps; canonical-only misses content the model "
      "memorized in one-edit variant spellings; encodings multiply sequence "
      "counts");
  bench::print_bench_json_footer("fig08_toxicity", bench_timer.seconds());
  return 0;
}
