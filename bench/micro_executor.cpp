// Microbenchmarks (google-benchmark) for ReLM's executor: model inference,
// shortest-path expansion throughput with and without top-k pruning, and
// randomized traversal sampling rates. The top-k comparison quantifies the
// §3.3 observation that decision rules transitively prune large parts of the
// search space. The *_Threads/*_Batched benchmarks measure the parallel
// batch API and the suffix-keyed logit cache on the same workloads.

#include <benchmark/benchmark.h>

#include <bit>
#include <cmath>
#include <mutex>

#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "core/token_masks.hpp"
#include "experiments/setup.hpp"
#include "model/decoding.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"
#include "util/token_bitset.hpp"

namespace {

using namespace relm;

const experiments::World& world() {
  static experiments::World w = experiments::build_world(
      experiments::WorldConfig::scaled(0.25));
  return w;
}

void BM_NgramNextLogProbs(benchmark::State& state) {
  auto ctx = world().tokenizer->encode("The man was trained in computer");
  for (auto _ : state) {
    benchmark::DoNotOptimize(world().xl->next_log_probs(ctx));
  }
}
BENCHMARK(BM_NgramNextLogProbs);

void BM_CachedNextLogProbs(benchmark::State& state) {
  model::CachingModel cached(world().xl);
  auto ctx = world().tokenizer->encode("The man was trained in computer");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cached.next_log_probs(ctx));
  }
}
BENCHMARK(BM_CachedNextLogProbs);

// Parallel fan-out of next_log_probs_batch across the shared pool. Arg(0) is
// the thread count (1 = serial fast path). 32 distinct contexts per call —
// more than the pool size, so work-queue draining is exercised.
void BM_BatchNextLogProbsThreads(benchmark::State& state) {
  util::ThreadPool::set_shared_threads(static_cast<std::size_t>(state.range(0)));
  std::vector<std::vector<tokenizer::TokenId>> contexts;
  const char* seeds[] = {"The man was trained in", "https://www.", "science",
                         "The woman went to the"};
  for (std::size_t i = 0; i < 32; ++i) {
    auto ctx = world().tokenizer->encode(seeds[i % 4]);
    ctx.push_back(static_cast<tokenizer::TokenId>(i % world().xl->vocab_size()));
    contexts.push_back(std::move(ctx));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(world().xl->next_log_probs_batch(contexts));
  }
  util::ThreadPool::set_shared_threads(1);
}
BENCHMARK(BM_BatchNextLogProbsThreads)->Arg(1)->Arg(2)->Arg(4);

// Suffix-keyed cache under batch evaluation: all 32 contexts share their
// last (order-1) tokens with a previously seen context, so after warmup
// every lookup is a hit regardless of full-context diversity.
void BM_CachedBatchSuffixHits(benchmark::State& state) {
  model::CachingModel cached(world().xl);
  std::vector<std::vector<tokenizer::TokenId>> contexts;
  auto suffix = world().tokenizer->encode("trained in computer");
  for (std::size_t i = 0; i < 32; ++i) {
    // Distinct long prefixes, identical relevant suffix.
    std::vector<tokenizer::TokenId> ctx(
        i + 1, static_cast<tokenizer::TokenId>(i % world().xl->vocab_size()));
    ctx.insert(ctx.end(), suffix.begin(), suffix.end());
    contexts.push_back(std::move(ctx));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cached.next_log_probs_batch(contexts));
  }
  state.counters["hit_rate"] =
      cached.hits() + cached.misses() > 0
          ? static_cast<double>(cached.hits()) /
                static_cast<double>(cached.hits() + cached.misses())
          : 0.0;
}
BENCHMARK(BM_CachedBatchSuffixHits);

core::SimpleSearchQuery url_query(std::optional<int> top_k) {
  core::SimpleSearchQuery query;
  query.query_string.query_str = experiments::url_pattern();
  query.query_string.prefix_str = "https://www.";
  query.decoding.top_k = top_k;
  query.max_results = 50;
  query.max_expansions = 400;
  query.sequence_length = 20;
  // The BM_ShortestPath* benchmarks measure the lockstep paths their names
  // promise (and the bench-gate pins BM_ShortestPath at 3%); the async
  // pipeline is priced separately by BM_ShortestPathPipeline.
  query.speculative_expansion = false;
  return query;
}

void BM_ShortestPathTopK40(benchmark::State& state) {
  core::SimpleSearchQuery query = url_query(40);
  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world().tokenizer);
  std::size_t expansions = 0;
  for (auto _ : state) {
    core::ShortestPathSearch search(*world().xl, compiled, query);
    benchmark::DoNotOptimize(search.all());
    expansions += search.stats().expansions;
  }
  state.counters["expansions/iter"] =
      static_cast<double>(expansions) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ShortestPathTopK40);

// The same URL query through the batched frontier + suffix-keyed cache.
// Arg(0) is the thread count. Compare against BM_ShortestPathTopK40 (strict
// serial Dijkstra, no cache) for the end-to-end engine speedup.
void BM_ShortestPathBatchedCached(benchmark::State& state) {
  util::ThreadPool::set_shared_threads(static_cast<std::size_t>(state.range(0)));
  core::SimpleSearchQuery query = url_query(40);
  query.expansion_batch_size = 16;
  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world().tokenizer);
  model::CachingModel cached(world().xl, 1 << 16);
  std::size_t hits = 0, misses = 0;
  for (auto _ : state) {
    core::ShortestPathSearch search(cached, compiled, query);
    benchmark::DoNotOptimize(search.all());
    hits += search.stats().cache_hits;
    misses += search.stats().cache_misses;
  }
  state.counters["hit_rate"] =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  util::ThreadPool::set_shared_threads(1);
}
BENCHMARK(BM_ShortestPathBatchedCached)->Arg(1)->Arg(2)->Arg(4);

// The async frontier pipeline on the same URL query: speculative expansion
// with the target-occupancy controller, suffix-keyed cache, and the rule-mask
// memo. Arg(0) is the thread count. Compare against BM_ShortestPathTopK40
// (strict serial) and BM_ShortestPathBatchedCached (lockstep batching).
void BM_ShortestPathPipeline(benchmark::State& state) {
  util::ThreadPool::set_shared_threads(static_cast<std::size_t>(state.range(0)));
  core::SimpleSearchQuery query = url_query(40);
  query.speculative_expansion = true;
  // Shared across iterations like the logit cache below: suffixes repeat
  // across searches far more than within one, and a run reuses one memo the
  // same way (SimpleSearchQuery::mask_memo).
  query.mask_memo = std::make_shared<core::MaskMemo>();
  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world().tokenizer);
  model::CachingModel cached(world().xl, 1 << 16);
  std::size_t rounds = 0, expansions = 0, memo_hits = 0, memo_misses = 0;
  for (auto _ : state) {
    core::ShortestPathSearch search(cached, compiled, query);
    benchmark::DoNotOptimize(search.all());
    rounds += search.stats().pump_rounds;
    expansions += search.stats().expansions;
    memo_hits += search.stats().mask_memo_hits;
    memo_misses += search.stats().mask_memo_misses;
  }
  state.counters["occupancy"] =
      rounds > 0 ? static_cast<double>(expansions) / static_cast<double>(rounds)
                 : 0.0;
  state.counters["memo_hit_rate"] =
      memo_hits + memo_misses > 0
          ? static_cast<double>(memo_hits) /
                static_cast<double>(memo_hits + memo_misses)
          : 0.0;
  util::ThreadPool::set_shared_threads(1);
}
BENCHMARK(BM_ShortestPathPipeline)->Arg(1)->Arg(2)->Arg(4);

// The same query with the precompiled-bitmask fast path disabled: every
// expansion returns to probing each automaton edge against the rule mask.
// Compare against BM_ShortestPathTopK40 (masks on by default) for the
// end-to-end hot-loop saving.
void BM_ShortestPathTopK40MasksOff(benchmark::State& state) {
  core::SimpleSearchQuery query = url_query(40);
  query.use_token_masks = false;
  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world().tokenizer);
  for (auto _ : state) {
    core::ShortestPathSearch search(*world().xl, compiled, query);
    benchmark::DoNotOptimize(search.all());
  }
}
BENCHMARK(BM_ShortestPathTopK40MasksOff);

// Isolated expansion primitives on a synthetic dense token automaton, away
// from model-inference noise. Arg(0) is the vocabulary size; the state under
// measurement carries vocab/2 outgoing edges (URL- and word-class states in
// real queries are this dense) and the decoding rule keeps ~1/16 of the
// vocabulary, the regime top-k=40 style rules put the executor in.
struct MaskBenchFixture {
  std::size_t vocab;
  core::TokenMaskTable table;
  util::TokenBitset rule;

  explicit MaskBenchFixture(std::size_t v) : vocab(v), rule(v) {
    automata::Dfa dfa(static_cast<automata::Symbol>(v));
    automata::StateId s0 = dfa.add_state(false);
    automata::StateId s1 = dfa.add_state(true);
    dfa.set_start(s0);
    for (std::size_t t = 0; t < v; t += 2) {
      dfa.add_edge(s0, static_cast<automata::Symbol>(t), s1);
    }
    table = core::build_token_masks(dfa);
    util::Pcg32 rng(17);
    for (std::size_t t = 0; t < v; ++t) {
      if (rng.bounded(16) == 0) rule.set(t);
    }
  }
};

// Mask-and-scan: intersect the state bitmask with the rule mask word by word
// and recover each survivor's CSR target by rank (running popcount). This is
// exactly the loop CompiledQuery::expand_masked runs per live automaton.
void BM_MaskExpand(benchmark::State& state) {
  MaskBenchFixture fx(static_cast<std::size_t>(state.range(0)));
  const std::uint64_t* row = fx.table.state_words(0);
  const std::uint64_t* rule_words = fx.rule.words().data();
  const std::uint32_t* targets =
      fx.table.edge_targets.data() + fx.table.edge_offsets[0];
  const std::size_t words = fx.table.words_per_state;
  std::uint64_t survivors = 0;
  for (auto _ : state) {
    std::uint64_t sink = 0;
    std::uint32_t base_rank = 0;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t word = row[w];
      std::uint64_t bits = word & rule_words[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const std::uint32_t rank =
            base_rank +
            static_cast<std::uint32_t>(std::popcount(word & ((1ull << b) - 1)));
        sink += targets[rank];
        ++survivors;
      }
      base_rank += static_cast<std::uint32_t>(std::popcount(word));
    }
    benchmark::DoNotOptimize(sink);
  }
  state.counters["survivors/iter"] =
      static_cast<double>(survivors) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MaskExpand)->Arg(1024)->Arg(8192);

// The pre-mask hot loop: visit every outgoing edge and probe the rule mask
// per edge. Cost scales with edge count instead of vocab/64 + survivors.
void BM_MaskExpandProbe(benchmark::State& state) {
  MaskBenchFixture fx(static_cast<std::size_t>(state.range(0)));
  const std::uint32_t begin = fx.table.edge_offsets[0];
  const std::uint32_t end = fx.table.edge_offsets[1];
  for (auto _ : state) {
    std::uint64_t sink = 0;
    for (std::uint32_t e = begin; e < end; ++e) {
      if (fx.rule[fx.table.edge_tokens[e]]) sink += fx.table.edge_targets[e];
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_MaskExpandProbe)->Arg(1024)->Arg(8192);

// Building the rule mask itself (top-k + top-p over a full distribution):
// the per-step cost that the per-state masks let the executor amortize
// across every candidate edge at once.
void BM_AllowedTokensBitset(benchmark::State& state) {
  const std::size_t vocab = static_cast<std::size_t>(state.range(0));
  util::Pcg32 rng(29);
  std::vector<double> log_probs(vocab);
  double total = 0.0;
  for (double& lp : log_probs) {
    lp = 0.05 + rng.uniform();
    total += lp;
  }
  for (double& lp : log_probs) lp = std::log(lp / total);
  model::DecodingRules rules;
  rules.top_k = 40;
  rules.top_p = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::allowed_tokens(log_probs, rules));
  }
}
BENCHMARK(BM_AllowedTokensBitset)->Arg(1024)->Arg(8192);

void BM_ShortestPathUnrestricted(benchmark::State& state) {
  core::SimpleSearchQuery query = url_query(std::nullopt);
  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world().tokenizer);
  for (auto _ : state) {
    core::ShortestPathSearch search(*world().xl, compiled, query);
    benchmark::DoNotOptimize(search.all());
  }
}
BENCHMARK(BM_ShortestPathUnrestricted);

void BM_RandomSampling(benchmark::State& state) {
  core::SimpleSearchQuery query;
  query.query_string.query_str =
      "The ((man)|(woman)) was trained in ((art)|(science)|(engineering))";
  query.query_string.prefix_str = "The ((man)|(woman)) was trained in";
  query.search_strategy = core::SearchStrategy::kRandomSampling;
  query.num_samples = 1;
  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world().tokenizer);
  core::RandomSampler sampler(*world().xl, compiled, query, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_once());
  }
}
BENCHMARK(BM_RandomSampling);

// Observability overhead floor: the cost of an RELM_TRACE_SPAN at a site
// when tracing is disabled (the default for every production run). This is
// the per-span tax paid by the instrumented hot paths — it must stay at a
// single relaxed atomic load (sub-nanosecond-ish), which the bench-gate's
// shortest-path budget indirectly enforces end to end.
void BM_ObsSpanDisabled(benchmark::State& state) {
  if (obs::Trace::enabled()) obs::Trace::stop();
  for (auto _ : state) {
    RELM_TRACE_SPAN("bench.disabled_span");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

// Span cost with tracing on: clock reads plus one per-thread buffered event
// and one histogram observe.
void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::Trace::start();
  for (auto _ : state) {
    RELM_TRACE_SPAN("bench.enabled_span");
    benchmark::DoNotOptimize(&state);
  }
  obs::Trace::stop();
}
BENCHMARK(BM_ObsSpanEnabled);

// Striped counter add — the fast path used by every executor/cache metric.
void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Counter& c = obs::Registry::instance().counter("bench.counter");
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_ObsCounterAdd);

// Histogram observe: bucket search plus two striped adds.
void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Histogram& h = obs::Registry::instance().histogram(
      "bench.histogram", obs::Histogram::default_size_bounds());
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v = v < 4096.0 ? v + 1.0 : 0.0;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_ObsHistogramObserve);

// Sync-layer overhead floor: a raw std::mutex lock/unlock against the
// annotated relm::Mutex wrapper. Bench builds are Release (NDEBUG), so the
// rank detector and contention counters compile out and the two must be
// indistinguishable — the wrapper's lock() IS std::mutex::lock(). Debug-only
// machinery is priced separately by the test suite, not here.
void BM_SyncStdMutexBaseline(benchmark::State& state) {
  std::mutex m;  // relm-lint exemption does not apply: bench/ is out of scope
  for (auto _ : state) {
    m.lock();
    m.unlock();
  }
  benchmark::DoNotOptimize(&m);
}
BENCHMARK(BM_SyncStdMutexBaseline);

void BM_SyncRelmMutex(benchmark::State& state) {
  util::Mutex m(util::LockRank::kPoolJob);
  for (auto _ : state) {
    m.lock();
    m.unlock();
  }
  benchmark::DoNotOptimize(&m);
}
BENCHMARK(BM_SyncRelmMutex);

void BM_SyncRelmScopedLock(benchmark::State& state) {
  util::Mutex m(util::LockRank::kPoolJob);
  for (auto _ : state) {
    util::ScopedLock lock(m);
    benchmark::DoNotOptimize(&lock);
  }
}
BENCHMARK(BM_SyncRelmScopedLock);

void BM_QueryCompilation(benchmark::State& state) {
  core::SimpleSearchQuery query = url_query(40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::CompiledQuery::compile(query, *world().tokenizer));
  }
}
BENCHMARK(BM_QueryCompilation);

}  // namespace

BENCHMARK_MAIN();
