// Microbenchmarks (google-benchmark) for ReLM's executor: model inference,
// shortest-path expansion throughput with and without top-k pruning, and
// randomized traversal sampling rates. The top-k comparison quantifies the
// §3.3 observation that decision rules transitively prune large parts of the
// search space.

#include <benchmark/benchmark.h>

#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "experiments/setup.hpp"

namespace {

using namespace relm;

const experiments::World& world() {
  static experiments::World w = experiments::build_world(
      experiments::WorldConfig::scaled(0.25));
  return w;
}

void BM_NgramNextLogProbs(benchmark::State& state) {
  auto ctx = world().tokenizer->encode("The man was trained in computer");
  for (auto _ : state) {
    benchmark::DoNotOptimize(world().xl->next_log_probs(ctx));
  }
}
BENCHMARK(BM_NgramNextLogProbs);

void BM_CachedNextLogProbs(benchmark::State& state) {
  model::CachingModel cached(world().xl);
  auto ctx = world().tokenizer->encode("The man was trained in computer");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cached.next_log_probs(ctx));
  }
}
BENCHMARK(BM_CachedNextLogProbs);

core::SimpleSearchQuery url_query(std::optional<int> top_k) {
  core::SimpleSearchQuery query;
  query.query_string.query_str = experiments::url_pattern();
  query.query_string.prefix_str = "https://www.";
  query.decoding.top_k = top_k;
  query.max_results = 50;
  query.max_expansions = 400;
  query.sequence_length = 20;
  return query;
}

void BM_ShortestPathTopK40(benchmark::State& state) {
  core::SimpleSearchQuery query = url_query(40);
  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world().tokenizer);
  std::size_t expansions = 0;
  for (auto _ : state) {
    core::ShortestPathSearch search(*world().xl, compiled, query);
    benchmark::DoNotOptimize(search.all());
    expansions += search.stats().expansions;
  }
  state.counters["expansions/iter"] =
      static_cast<double>(expansions) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ShortestPathTopK40);

void BM_ShortestPathUnrestricted(benchmark::State& state) {
  core::SimpleSearchQuery query = url_query(std::nullopt);
  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world().tokenizer);
  for (auto _ : state) {
    core::ShortestPathSearch search(*world().xl, compiled, query);
    benchmark::DoNotOptimize(search.all());
  }
}
BENCHMARK(BM_ShortestPathUnrestricted);

void BM_RandomSampling(benchmark::State& state) {
  core::SimpleSearchQuery query;
  query.query_string.query_str =
      "The ((man)|(woman)) was trained in ((art)|(science)|(engineering))";
  query.query_string.prefix_str = "The ((man)|(woman)) was trained in";
  query.search_strategy = core::SearchStrategy::kRandomSampling;
  query.num_samples = 1;
  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world().tokenizer);
  core::RandomSampler sampler(*world().xl, compiled, query, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_once());
  }
}
BENCHMARK(BM_RandomSampling);

void BM_QueryCompilation(benchmark::State& state) {
  core::SimpleSearchQuery query = url_query(40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::CompiledQuery::compile(query, *world().tokenizer));
  }
}
BENCHMARK(BM_QueryCompilation);

}  // namespace

BENCHMARK_MAIN();
