// Figure 5: ReLM compared to the best of baseline sampling on the URL
// memorization task — valid URLs extracted as the run progresses. The paper
// plots the first 5 minutes of wall time on a GTX-3080; our deterministic
// clock is LLM invocations (wall time is printed too), since the simulator
// makes absolute times meaningless.

#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "experiments/memorization.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  util::Timer bench_timer;
  bench::print_header("fig05_memorization — URL extraction progress",
                      "Figure 5 (§4.1): ReLM extracts valid URLs faster than "
                      "fixed-stop-length random sampling");
  World world = bench::build_bench_world();

  const double scale = bench_scale_from_env();
  const std::size_t relm_results = static_cast<std::size_t>(4000 * scale);
  const std::size_t relm_expansions = static_cast<std::size_t>(40000 * scale);
  const std::size_t baseline_attempts = static_cast<std::size_t>(600 * scale);

  MemorizationRun relm_run =
      run_relm_url_extraction(world, *world.xl, relm_results, relm_expansions);

  std::vector<MemorizationRun> runs;
  runs.push_back(std::move(relm_run));
  for (std::size_t n : {1, 2, 4, 8, 16, 32, 64}) {
    runs.push_back(
        run_baseline_url_extraction(world, *world.xl, n, baseline_attempts, 91 + n));
  }

  // Progress series: valid unique URLs at LLM-call checkpoints.
  std::printf("%-14s", "llm_calls");
  for (const auto& run : runs) std::printf("%12s", run.label.c_str());
  std::printf("\n");
  std::size_t max_calls = 0;
  for (const auto& run : runs) max_calls = std::max(max_calls, run.total_llm_calls());
  for (std::size_t checkpoint = max_calls / 10; checkpoint <= max_calls;
       checkpoint += max_calls / 10) {
    std::printf("%-14zu", checkpoint);
    for (const auto& run : runs) {
      std::size_t valid = 0;
      std::unordered_set<std::string> seen;
      for (const auto& e : run.events) {
        if (e.llm_calls > checkpoint) break;
        if (e.valid && seen.insert(e.url).second) ++valid;
      }
      std::printf("%12zu", valid);
    }
    std::printf("\n");
  }

  std::printf("\n%-14s", "totals");
  for (const auto& run : runs) std::printf("%12s", run.label.c_str());
  std::printf("\n%-14s", "valid_unique");
  for (const auto& run : runs) std::printf("%12zu", run.valid_unique());
  std::printf("\n%-14s", "llm_calls");
  for (const auto& run : runs) std::printf("%12zu", run.total_llm_calls());
  std::printf("\n%-14s", "seconds");
  for (const auto& run : runs) std::printf("%12.2f", run.total_seconds());
  std::printf("\n\n");

  std::size_t first_valid_calls = 0;
  for (const auto& e : runs[0].events) {
    if (e.valid) {
      first_valid_calls = e.llm_calls;
      break;
    }
  }
  std::printf("relm startup: first valid URL after %zu llm calls (paper: first "
              "result within ~5 seconds)\n",
              first_valid_calls);
  bench::print_footnote(
      "paper shape: ReLM dominates every fixed-n baseline; short n truncate "
      "URLs, long n waste calls on duplicates");
  bench::print_bench_json_footer("fig05_memorization", bench_timer.seconds());
  return 0;
}
