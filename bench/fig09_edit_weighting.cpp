// Figure 9 (appendix C): the effect of walk-count edge weighing on where
// edits land in the sampled prefix. Uniform edge sampling concentrates ~80%
// of the edits in the first ~6 characters; normalizing each edge by the
// number of walks through it spreads edits roughly linearly across the ~20+
// character prefix.

#include "bench_util.hpp"
#include "experiments/bias.hpp"
#include "stats/stats.hpp"

using namespace relm;
using namespace relm::experiments;

namespace {

stats::EmpiricalCdf edit_cdf(const World& world, bool walk_normalized,
                             std::size_t samples, std::uint64_t seed) {
  BiasRun run = run_bias(world, *world.xl,
                         BiasVariant{/*canonical=*/true, /*use_prefix=*/true,
                                     /*edits=*/true},
                         samples, seed, walk_normalized);
  stats::EmpiricalCdf cdf;
  for (double pos : run.prefix_edit_positions) cdf.add(pos);
  return cdf;
}

}  // namespace

int main() {
  util::Timer bench_timer;
  bench::print_header(
      "fig09_edit_weighting — CDF of prefix edit positions",
      "Figure 9 (§C): unnormalized sampling biases edits to early positions");
  World world = bench::build_bench_world();

  const std::size_t samples = static_cast<std::size_t>(
      1500 * bench_scale_from_env());

  stats::EmpiricalCdf normalized = edit_cdf(world, true, samples, 31);
  stats::EmpiricalCdf uniform = edit_cdf(world, false, samples, 32);

  // The prefix "The man was trained in" / "The woman was trained in" is
  // 22-24 characters.
  std::printf("%-18s %14s %14s\n", "edit_position<=", "normalized", "uniform");
  for (int pos = 2; pos <= 24; pos += 2) {
    std::printf("%-18d %14.3f %14.3f\n", pos, normalized.at(pos), uniform.at(pos));
  }
  std::printf("\nedits observed: normalized=%zu uniform=%zu\n",
              normalized.size(), uniform.size());
  std::printf("fraction of edits in first 6 chars: normalized=%.2f "
              "uniform=%.2f (paper: uniform ~0.8)\n",
              normalized.at(6), uniform.at(6));
  bench::print_footnote(
      "shape to check: the uniform CDF saturates within a few characters; the "
      "normalized CDF rises roughly linearly across the prefix");
  bench::print_bench_json_footer("fig09_edit_weighting", bench_timer.seconds());
  return 0;
}
