// Figure 3 + the §3.2 measurements around encodings:
//   - the 2^(n-1) growth of the full set of encodings for merged strings,
//     and the token-automaton path counts matching the tokenizer's counts;
//   - the rate of non-canonical samples in unprompted generation (the paper
//     measures ~3% for GPT-2 and ~2% for GPT-2 XL).

#include "automata/regex.hpp"
#include "automata/walks.hpp"
#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "model/decoding.hpp"
#include "util/strings.hpp"

using namespace relm;
using namespace relm::experiments;

namespace {

double non_canonical_rate(const model::NgramModel& model,
                          const tokenizer::BpeTokenizer& tok,
                          std::size_t samples, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  model::DecodingRules rules;
  rules.top_k = 40;
  std::size_t non_canonical = 0;
  std::size_t produced = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    auto tokens = model::generate(model, {}, 24, rules, rng);
    if (tokens.empty()) continue;
    ++produced;
    if (!tok.is_canonical(tokens)) ++non_canonical;
  }
  return produced ? static_cast<double>(non_canonical) / produced : 0.0;
}

}  // namespace

int main() {
  util::Timer bench_timer;
  bench::print_header("fig03_encodings — encoding multiplicity & canonicality",
                      "Figure 3 / §3.2: full vs canonical encodings");
  World world = bench::build_bench_world();
  const auto& tok = *world.tokenizer;

  std::printf("full-set-of-encodings counts (paper: grows 2^(n-1) when all "
              "partitions are tokens):\n");
  std::printf("%-24s %12s %18s %20s\n", "string", "encodings",
              "automaton paths", "canonical paths");
  for (const char* text : {"The", "The man", "art", "trained",
                           "The man was trained in art"}) {
    automata::Dfa chars = automata::compile_regex(util::regex_escape(text));
    core::TokenAutomaton full = core::compile_token_automaton(
        chars, tok, core::TokenizationStrategy::kAllTokens);
    core::TokenAutomaton canonical = core::compile_token_automaton(
        chars, tok, core::TokenizationStrategy::kCanonicalTokens);
    automata::WalkCounts full_walks(full.dfa, 64);
    automata::WalkCounts canon_walks(canonical.dfa, 64);
    std::printf("%-24s %12.0f %18.0f %20.0f\n", text, tok.count_encodings(text),
                full_walks.total(), canon_walks.total());
  }

  std::size_t samples = static_cast<std::size_t>(
      3000 * bench_scale_from_env());
  std::printf("\nnon-canonical rate of unprompted top-k=40 samples:\n");
  std::printf("  sim-xl:    %5.1f%%  (paper, GPT-2 XL: ~2%%)\n",
              100 * non_canonical_rate(*world.xl, tok, samples, 301));
  std::printf("  sim-small: %5.1f%%  (paper, GPT-2: ~3%%)\n",
              100 * non_canonical_rate(*world.small, tok, samples, 302));
  bench::print_footnote(
      "the simulators are trained with a deliberately higher non-canonical "
      "mixture than GPT-2 exhibits (DESIGN.md) so the Figure 7a collapse has "
      "a count-level mechanism; the measured rate reflects that choice");
  bench::print_bench_json_footer("fig03_encodings", bench_timer.seconds());
  return 0;
}
