// Ablations for the design choices DESIGN.md calls out:
//   1. canonical compilation: enumerate-and-encode (§3.2 option 1) vs the
//      dynamic-pruning fallback (option 2) on the same finite language —
//      identical results, very different LLM-call budgets;
//   2. logit caching: random traversal cost with and without CachingModel;
//   3. walk normalization: sample distribution distortion without it
//      (the quantitative side of Figure 9).

#include <cmath>
#include <map>

#include "bench_util.hpp"
#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "model/ngram_model.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  util::Timer bench_timer;
  bench::print_header("ablation_compiler — design-choice ablations",
                      "DESIGN.md §4 (canonical strategies, caching, "
                      "normalization)");
  World world = bench::build_bench_world();

  // --- 1. canonical: enumeration vs dynamic pruning --------------------------
  {
    core::SimpleSearchQuery query;
    query.query_string.query_str =
        "The ((man)|(woman)) was trained in ((art)|(science)|(medicine))";
    query.query_string.prefix_str = "The ((man)|(woman)) was trained in";
    query.max_results = 6;
    query.tokenization_strategy = core::TokenizationStrategy::kCanonicalTokens;

    query.canonical_enumeration_budget = 50000;  // enumeration path
    core::CompiledQuery enumerated =
        core::CompiledQuery::compile(query, *world.tokenizer);
    core::ShortestPathSearch search_enum(*world.xl, enumerated, query);
    auto results_enum = search_enum.all();

    query.canonical_enumeration_budget = 0;  // force dynamic pruning
    core::CompiledQuery dynamic =
        core::CompiledQuery::compile(query, *world.tokenizer);
    core::ShortestPathSearch search_dyn(*world.xl, dynamic, query);
    auto results_dyn = search_dyn.all();

    std::printf("canonical strategy          results   llm_calls  "
                "non-canonical-pruned\n");
    std::printf("  enumerate+encode          %7zu   %9zu  %20zu\n",
                results_enum.size(), search_enum.stats().llm_calls,
                search_enum.stats().pruned_non_canonical);
    std::printf("  dynamic pruning           %7zu   %9zu  %20zu\n",
                results_dyn.size(), search_dyn.stats().llm_calls,
                search_dyn.stats().pruned_non_canonical);
    bool same = results_enum.size() == results_dyn.size();
    for (std::size_t i = 0; same && i < results_enum.size(); ++i) {
      same = results_enum[i].text == results_dyn[i].text;
    }
    std::printf("  identical result stream:  %s\n\n", same ? "yes" : "NO (bug)");
  }

  // --- 2. logit caching -------------------------------------------------------
  {
    core::SimpleSearchQuery query;
    query.query_string.query_str =
        "The man was trained in ((art)|(science)|(medicine)|(math))";
    query.query_string.prefix_str = "The man was trained in";
    query.search_strategy = core::SearchStrategy::kRandomSampling;
    query.num_samples = 2000;
    core::CompiledQuery compiled =
        core::CompiledQuery::compile(query, *world.tokenizer);

    util::Timer uncached_timer;
    core::RandomSampler raw(*world.xl, compiled, query, 3);
    raw.sample_all();
    double uncached = uncached_timer.seconds();

    model::CachingModel cached_model(world.xl);
    util::Timer cached_timer;
    core::RandomSampler cached(cached_model, compiled, query, 3);
    cached.sample_all();
    double cached_time = cached_timer.seconds();

    std::printf("logit cache (2000 samples): uncached %.3fs, cached %.3fs "
                "(hit rate %.0f%%) -> %.1fx\n\n",
                uncached, cached_time,
                100.0 * cached_model.hits() /
                    std::max<std::size_t>(1, cached_model.hits() + cached_model.misses()),
                cached_time > 0 ? uncached / cached_time : 0.0);
  }

  // --- 3. walk normalization distortion ---------------------------------------
  {
    // Language a|(b{1,8}): uniform over strings gives P(a) = 1/9; uniform
    // edge choice gives P(a) = 1/2.
    core::SimpleSearchQuery query;
    query.query_string.query_str = "(a)|(b{1,8})";
    query.query_string.prefix_str = "(a)|(b{1,8})";  // all prefix: model-free
    query.search_strategy = core::SearchStrategy::kRandomSampling;
    query.num_samples = 20000;
    for (bool normalized : {true, false}) {
      query.walk_normalized_sampling = normalized;
      core::CompiledQuery compiled =
          core::CompiledQuery::compile(query, *world.tokenizer);
      core::RandomSampler sampler(*world.xl, compiled, query, 17);
      auto samples = sampler.sample_all();
      std::size_t a_count = 0;
      for (const auto& s : samples) a_count += s.text == "a" ? 1 : 0;
      std::printf("prefix sampling %-12s: P(\"a\") = %.3f (uniform-over-"
                  "strings target: %.3f)\n",
                  normalized ? "normalized" : "unnormalized",
                  static_cast<double>(a_count) / samples.size(), 1.0 / 9.0);
    }
  }
  bench::print_bench_json_footer("ablation_compiler", bench_timer.seconds());
  return 0;
}
