// Figure 10 (appendix F): the full-sample-budget view of the URL
// memorization run, including the duplicate rate of the baselines — over 90%
// duplicates for n <= 8, ~25% for n = 64 in the paper — while ReLM produces
// zero duplicates by construction (deterministic traversal of the query
// space).

#include <unordered_set>

#include "bench_util.hpp"
#include "experiments/memorization.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  util::Timer bench_timer;
  bench::print_header("fig10_memorization_full — full run with duplicate rates",
                      "Figure 10 (§F): duplicates dominate small-n baselines; "
                      "ReLM never duplicates");
  World world = bench::build_bench_world();

  const double scale = bench_scale_from_env();
  const std::size_t attempts = static_cast<std::size_t>(1500 * scale);

  std::printf("%-14s %10s %12s %12s %14s %16s\n", "run", "attempts",
              "valid_unique", "duplicates", "dup_rate_%", "valid_rate_%");

  MemorizationRun relm_run = run_relm_url_extraction(
      world, *world.xl, static_cast<std::size_t>(6000 * scale),
      static_cast<std::size_t>(60000 * scale));
  std::printf("%-14s %10zu %12zu %12zu %14.1f %16.2f\n", "relm",
              relm_run.events.size(), relm_run.valid_unique(), std::size_t{0},
              0.0,
              relm_run.events.empty()
                  ? 0.0
                  : 100.0 * relm_run.valid_unique() / relm_run.events.size());

  for (std::size_t n : {1, 2, 4, 8, 16, 32, 64}) {
    MemorizationRun run =
        run_baseline_url_extraction(world, *world.xl, n, attempts, 191 + n);
    double dup_rate = run.events.empty()
                          ? 0.0
                          : 100.0 * run.duplicates() / run.events.size();
    double valid_rate = run.events.empty()
                            ? 0.0
                            : 100.0 * run.valid_unique() / run.events.size();
    std::printf("%-14s %10zu %12zu %12zu %14.1f %16.2f\n", run.label.c_str(),
                run.events.size(), run.valid_unique(), run.duplicates(),
                dup_rate, valid_rate);
  }

  bench::print_footnote(
      "paper shape: dup rate falls as n grows (more entropy per sample) but "
      "valid throughput stays poor; ReLM avoids duplicates by construction");
  bench::print_bench_json_footer("fig10_memorization_full", bench_timer.seconds());
  return 0;
}
