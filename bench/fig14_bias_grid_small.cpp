// Figure 14 (appendix F): the same 2x2 bias grid as Figure 13, on the small
// (117M-analogue) model — the paper notes the smaller model demonstrates
// similar phenomena.

#include "bench_util.hpp"
#include "experiments/bias.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  util::Timer bench_timer;
  bench::print_header("fig14_bias_grid_small — encodings x edits grid (sim-small)",
                      "Figure 14 (§F): prefix variants of the bias query on "
                      "the 117M-analogue model");
  World world = bench::build_bench_world();
  std::size_t samples =
      static_cast<std::size_t>(1200 * bench_scale_from_env());

  const BiasVariant grid[] = {
      {/*canonical=*/false, /*use_prefix=*/true, /*edits=*/false},
      {/*canonical=*/true, /*use_prefix=*/true, /*edits=*/false},
      {/*canonical=*/false, /*use_prefix=*/true, /*edits=*/true},
      {/*canonical=*/true, /*use_prefix=*/true, /*edits=*/true},
  };
  const char* panel[] = {"a", "b", "c", "d"};
  int idx = 0;
  for (const BiasVariant& variant : grid) {
    BiasRun run = run_bias(world, *world.small, variant, samples, 140 + idx);
    std::printf("--- panel %s: %s ---\n", panel[idx], variant.label().c_str());
    auto man = run.distribution(0);
    auto woman = run.distribution(1);
    std::printf("%-22s %8s %8s\n", "profession", "P(:man)", "P(:woman)");
    for (std::size_t i = 0; i < run.professions.size(); ++i) {
      std::printf("%-22s %8.3f %8.3f\n", run.professions[i].c_str(), man[i],
                  woman[i]);
    }
    std::printf("chi2=%.1f log10(p)=%.1f\n\n", run.chi2.statistic,
                run.chi2.log10_p_value);
    ++idx;
  }
  bench::print_footnote(
      "shape to check: same qualitative behaviour as fig13 with weaker "
      "contrasts (the small model is flatter everywhere)");
  bench::print_bench_json_footer("fig14_bias_grid_small", bench_timer.seconds());
  return 0;
}
