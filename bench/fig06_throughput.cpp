// Figure 6: validated-URLs-per-second throughput for ReLM and the random
// generation baselines of fixed length n. The paper's optimal baseline
// (n = 16) is still 15x slower than ReLM. We report throughput both per
// 1000 LLM calls (deterministic) and per wall-clock second.
//
// On top of the paper comparison, this binary measures the engine-level
// optimizations: the same ReLM query re-run with batched frontier expansion
// and the suffix-keyed logit cache, on 1 thread and on the full pool. The
// two batched runs must produce byte-identical event streams (the
// determinism guarantee of the parallel batch API); the batched runs must
// produce the same URL set as the strict serial Dijkstra. With
// RELM_BENCH_JSON=1 a machine-readable BENCH_JSON line is appended for
// scripts/bench.sh.

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <unordered_set>

#include "bench_util.hpp"
#include "experiments/memorization.hpp"
#include "util/thread_pool.hpp"

using namespace relm;
using namespace relm::experiments;

namespace {

// Pool-independent fingerprint of a run: the (url, valid, llm_calls)
// event stream. Wall-clock fields are excluded.
std::string event_fingerprint(const MemorizationRun& run) {
  std::string fp;
  for (const auto& e : run.events) {
    fp += e.url;
    fp += e.valid ? "|1|" : "|0|";
    fp += std::to_string(e.llm_calls);
    fp += '\n';
  }
  return fp;
}

std::vector<std::string> sorted_urls(const MemorizationRun& run) {
  std::vector<std::string> urls;
  urls.reserve(run.events.size());
  for (const auto& e : run.events) urls.push_back(e.url);
  std::sort(urls.begin(), urls.end());
  return urls;
}

}  // namespace

int main() {
  bench::print_header("fig06_throughput — validated URLs per unit work",
                      "Figure 6 (§4.1): best baseline n is ~16, still far "
                      "slower than ReLM");
  World world = bench::build_bench_world();

  const double scale = bench_scale_from_env();
  const std::size_t max_results = static_cast<std::size_t>(4000 * scale);
  const std::size_t max_expansions = static_cast<std::size_t>(40000 * scale);
  util::Timer serial_timer;
  MemorizationRun relm_run =
      run_relm_url_extraction(world, *world.xl, max_results, max_expansions);
  const double serial_wall = serial_timer.seconds();

  std::printf("%-14s %14s %12s %12s %16s %14s\n", "run", "valid_unique",
              "llm_calls", "seconds", "valid/1k_calls", "valid/sec");
  auto row = [](const MemorizationRun& run) {
    double per_sec = run.total_seconds() > 0
                         ? run.valid_unique() / run.total_seconds()
                         : 0.0;
    std::printf("%-14s %14zu %12zu %12.2f %16.2f %14.1f\n", run.label.c_str(),
                run.valid_unique(), run.total_llm_calls(), run.total_seconds(),
                run.throughput_per_1k_calls(), per_sec);
  };
  row(relm_run);

  // Engine-optimization runs: batched expansion + suffix-keyed cache, first
  // pinned to one thread, then on the full shared pool.
  const std::size_t pool_threads =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  RelmRunOptions batched;
  batched.expansion_batch = 16;
  batched.cache_capacity = 1 << 16;

  batched.label = "relm_bt1";
  util::ThreadPool::set_shared_threads(1);
  util::Timer bt1_timer;
  MemorizationRun bt1 = run_relm_url_extraction(world, *world.xl, max_results,
                                                max_expansions, batched);
  const double bt1_wall = bt1_timer.seconds();

  batched.label = "relm_bt" + std::to_string(pool_threads);
  util::ThreadPool::set_shared_threads(pool_threads);
  util::Timer btn_timer;
  MemorizationRun btn = run_relm_url_extraction(world, *world.xl, max_results,
                                                max_expansions, batched);
  const double btn_wall = btn_timer.seconds();
  util::ThreadPool::set_shared_threads(1);

  row(bt1);
  row(btn);

  const bool deterministic =
      event_fingerprint(bt1) == event_fingerprint(btn);
  // Set-equality with strict serial holds for full enumerations; when a
  // budget truncates the run, the batched frontier may cross the boundary
  // with different tail members (same guarantee as the unit tests pin on
  // finite languages), so the check is advisory there.
  const bool truncated =
      relm_run.events.size() >= max_results ||
      relm_run.search_stats.expansions >= max_expansions ||
      bt1.events.size() >= max_results ||
      bt1.search_stats.expansions >= max_expansions;
  const bool same_urls = sorted_urls(relm_run) == sorted_urls(bt1);
  std::printf("\n[engine] batch=16 cache=%zu: serial %.2fs -> 1-thread %.2fs "
              "(%.2fx) -> %zu-thread %.2fs (%.2fx); cache hit rate %.1f%% "
              "(%zu hits / %zu misses, %zu evictions)\n",
              batched.cache_capacity, serial_wall, bt1_wall,
              bt1_wall > 0 ? serial_wall / bt1_wall : 0.0, pool_threads,
              btn_wall, btn_wall > 0 ? serial_wall / btn_wall : 0.0,
              100.0 * btn.search_stats.cache_hit_rate(),
              btn.search_stats.cache_hits, btn.search_stats.cache_misses,
              btn.search_stats.cache_evictions);
  std::printf("[engine] %zu-thread events byte-identical to 1-thread: %s; "
              "URL set identical to strict serial: %s\n",
              pool_threads, deterministic ? "yes" : "NO (BUG)",
              same_urls ? "yes"
                        : (truncated ? "differs at budget boundary (expected "
                                       "for truncated runs)"
                                     : "NO (BUG)"));

  double best_baseline = 0.0;
  std::size_t best_n = 0;
  for (std::size_t n : {1, 2, 4, 8, 16, 32, 64}) {
    MemorizationRun run = run_baseline_url_extraction(
        world, *world.xl, n, static_cast<std::size_t>(600 * scale), 91 + n);
    row(run);
    if (run.throughput_per_1k_calls() > best_baseline) {
      best_baseline = run.throughput_per_1k_calls();
      best_n = n;
    }
  }

  std::printf("\nrelm vs best baseline (n=%zu): %.1fx higher throughput per "
              "LLM call over the full run (paper: 15x)\n",
              best_n,
              best_baseline > 0 ? relm_run.throughput_per_1k_calls() / best_baseline
                                : 0.0);

  // Paper-style wall-to-wall comparison: work needed to reach a fixed number
  // of validated URLs (Figure 6's regime, before ReLM's long tail dilutes
  // the average).
  auto calls_to_reach = [](const MemorizationRun& run, std::size_t k) {
    std::unordered_set<std::string> seen;
    for (const auto& e : run.events) {
      if (e.valid && seen.insert(e.url).second && seen.size() >= k) {
        return e.llm_calls;
      }
    }
    return std::size_t{0};  // never reached
  };
  MemorizationRun best_run = run_baseline_url_extraction(
      world, *world.xl, best_n, static_cast<std::size_t>(600 * scale), 91 + best_n);
  std::printf("\n%-22s %12s %16s %10s\n", "valid URLs reached", "relm_calls",
              "best_baseline", "speedup");
  for (std::size_t k : {10, 25, 40}) {
    std::size_t r = calls_to_reach(relm_run, k);
    std::size_t b = calls_to_reach(best_run, k);
    if (r == 0) continue;
    if (b == 0) {
      std::printf("%-22zu %12zu %16s %10s\n", k, r, "(never)", "inf");
    } else {
      std::printf("%-22zu %12zu %16zu %9.1fx\n", k, r, b,
                  static_cast<double>(b) / static_cast<double>(r));
    }
  }

  // Machine-readable summary for scripts/bench.sh. One line, valid JSON.
  const char* want_json = std::getenv("RELM_BENCH_JSON");
  if (want_json && *want_json && std::string(want_json) != "0") {
    std::printf(
        "BENCH_JSON {\"bench\":\"fig06_throughput\",\"scale\":%.3f,"
        "\"serial\":{\"wall_seconds\":%.4f,\"llm_calls\":%zu,"
        "\"valid_unique\":%zu},"
        "\"batched_1_thread\":{\"wall_seconds\":%.4f,\"llm_calls\":%zu,"
        "\"cache_hit_rate\":%.4f},"
        "\"batched_%zu_threads\":{\"wall_seconds\":%.4f,\"llm_calls\":%zu,"
        "\"cache_hit_rate\":%.4f},"
        "\"threads\":%zu,\"expansion_batch\":16,"
        "\"speedup_1_thread\":%.3f,\"speedup_%zu_threads\":%.3f,"
        "\"deterministic_across_threads\":%s,\"same_urls_as_serial\":%s,"
        "\"budget_truncated\":%s,\"metrics\":%s}\n",
        scale, serial_wall, relm_run.total_llm_calls(), relm_run.valid_unique(),
        bt1_wall, bt1.total_llm_calls(), bt1.search_stats.cache_hit_rate(),
        pool_threads, btn_wall, btn.total_llm_calls(),
        btn.search_stats.cache_hit_rate(), pool_threads,
        bt1_wall > 0 ? serial_wall / bt1_wall : 0.0, pool_threads,
        btn_wall > 0 ? serial_wall / btn_wall : 0.0,
        deterministic ? "true" : "false", same_urls ? "true" : "false",
        truncated ? "true" : "false", bench::metrics_json().c_str());
  }

  // Determinism and (untruncated) set-equivalence are correctness
  // properties, not performance: fail loudly so CI's bench smoke catches
  // regressions.
  if (!deterministic || (!same_urls && !truncated)) return 1;
  return 0;
}
