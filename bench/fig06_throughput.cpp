// Figure 6: validated-URLs-per-second throughput for ReLM and the random
// generation baselines of fixed length n. The paper's optimal baseline
// (n = 16) is still 15x slower than ReLM. We report throughput both per
// 1000 LLM calls (deterministic) and per wall-clock second.
//
// On top of the paper comparison, this binary measures the engine-level
// optimizations: the same ReLM query re-run with batched frontier expansion
// and the suffix-keyed logit cache, on 1 thread and on the full pool. The
// two batched runs must produce byte-identical event streams (the
// determinism guarantee of the parallel batch API); the batched runs must
// produce the same URL set as the strict serial Dijkstra. The async frontier
// pipeline (speculative expansion + occupancy controller) then runs once per
// RELM_BENCH_THREADS entry, with byte-identical event streams required
// across the whole sweep. With RELM_BENCH_JSON=1 a machine-readable
// BENCH_JSON line is appended for scripts/bench.sh.

#include <algorithm>
#include <array>
#include <cstdlib>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "bench_util.hpp"
#include "experiments/memorization.hpp"
#include "util/thread_pool.hpp"

using namespace relm;
using namespace relm::experiments;

namespace {

// Pool-independent fingerprint of a run: the (url, valid, llm_calls)
// event stream. Wall-clock fields are excluded.
std::string event_fingerprint(const MemorizationRun& run) {
  std::string fp;
  for (const auto& e : run.events) {
    fp += e.url;
    fp += e.valid ? "|1|" : "|0|";
    fp += std::to_string(e.llm_calls);
    fp += '\n';
  }
  return fp;
}

std::vector<std::string> sorted_urls(const MemorizationRun& run) {
  std::vector<std::string> urls;
  urls.reserve(run.events.size());
  for (const auto& e : run.events) urls.push_back(e.url);
  std::sort(urls.begin(), urls.end());
  return urls;
}

// Wall clock here is the acceptance number, and on a small box OS jitter,
// allocator growth, and frequency drift are a double-digit fraction of these
// sub-second runs. Worse, the drift is monotone with run order — repeating
// one configuration back-to-back and taking its median still biases the
// RATIOS, because the serial baseline and the pipeline sweep then sample
// different epochs of the process. So the whole configuration sweep runs as
// three interleaved passes (serial, batched, pipeline sweep; then again,
// then again): every configuration samples early, middle, and late epochs,
// and per-configuration medians make the ratios drift-free. Runs come from
// the final pass — counters, events, and URL sets are deterministic across
// passes, only the clock varies.
constexpr int kPasses = 3;

double median(std::array<double, kPasses>& walls) {
  std::sort(walls.begin(), walls.end());
  return walls[kPasses / 2];
}

}  // namespace

int main() {
  bench::print_header("fig06_throughput — validated URLs per unit work",
                      "Figure 6 (§4.1): best baseline n is ~16, still far "
                      "slower than ReLM");
  World world = bench::build_bench_world();

  const double scale = bench_scale_from_env();
  const std::size_t max_results = static_cast<std::size_t>(4000 * scale);
  const std::size_t max_expansions = static_cast<std::size_t>(40000 * scale);

  // Engine-optimization runs: batched expansion + suffix-keyed cache, first
  // pinned to one thread, then on the full shared pool. The async-pipeline
  // sweep runs one configuration per RELM_BENCH_THREADS entry (default
  // "1 2 4 8" via scripts/bench.sh), each with speculative expansion and the
  // suffix-keyed cache. Pipeline scheduling is a pure function of search
  // state — never thread count — so the event streams must be byte-identical
  // across the sweep.
  const std::size_t pool_threads =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  RelmRunOptions batched;
  batched.expansion_batch = 16;
  batched.cache_capacity = 1 << 16;
  RelmRunOptions pipe;
  pipe.cache_capacity = 1 << 16;
  pipe.speculative = true;
  const std::vector<std::size_t> pipe_threads = bench::bench_threads_from_env();

  struct PipelineRun {
    std::size_t threads;
    MemorizationRun run;
    double wall;
  };
  std::optional<MemorizationRun> relm_run_slot, bt1_slot, btn_slot;
  std::vector<PipelineRun> pipeline_runs;
  std::array<double, kPasses> serial_walls{}, bt1_walls{}, btn_walls{};
  std::vector<std::array<double, kPasses>> pipe_walls(pipe_threads.size());

  for (int pass = 0; pass < kPasses; ++pass) {
    const bool last_pass = pass == kPasses - 1;
    {
      util::Timer timer;
      MemorizationRun run =
          run_relm_url_extraction(world, *world.xl, max_results, max_expansions);
      serial_walls[static_cast<std::size_t>(pass)] = timer.seconds();
      if (last_pass) relm_run_slot = std::move(run);
    }
    {
      batched.label = "relm_bt1";
      util::ThreadPool::set_shared_threads(1);
      util::Timer timer;
      MemorizationRun run = run_relm_url_extraction(
          world, *world.xl, max_results, max_expansions, batched);
      bt1_walls[static_cast<std::size_t>(pass)] = timer.seconds();
      if (last_pass) bt1_slot = std::move(run);
    }
    {
      batched.label = "relm_bt" + std::to_string(pool_threads);
      util::ThreadPool::set_shared_threads(pool_threads);
      util::Timer timer;
      MemorizationRun run = run_relm_url_extraction(
          world, *world.xl, max_results, max_expansions, batched);
      btn_walls[static_cast<std::size_t>(pass)] = timer.seconds();
      if (last_pass) btn_slot = std::move(run);
    }
    for (std::size_t i = 0; i < pipe_threads.size(); ++i) {
      pipe.label = "relm_pipe" + std::to_string(pipe_threads[i]);
      util::ThreadPool::set_shared_threads(pipe_threads[i]);
      util::Timer timer;
      MemorizationRun run = run_relm_url_extraction(
          world, *world.xl, max_results, max_expansions, pipe);
      pipe_walls[i][static_cast<std::size_t>(pass)] = timer.seconds();
      if (last_pass) {
        pipeline_runs.push_back(
            PipelineRun{pipe_threads[i], std::move(run), 0.0});
      }
    }
    util::ThreadPool::set_shared_threads(1);
  }
  MemorizationRun relm_run = std::move(*relm_run_slot);
  MemorizationRun bt1 = std::move(*bt1_slot);
  MemorizationRun btn = std::move(*btn_slot);
  const double serial_wall = median(serial_walls);
  const double bt1_wall = median(bt1_walls);
  const double btn_wall = median(btn_walls);
  for (std::size_t i = 0; i < pipeline_runs.size(); ++i) {
    pipeline_runs[i].wall = median(pipe_walls[i]);
  }

  std::printf("%-14s %14s %12s %12s %16s %14s\n", "run", "valid_unique",
              "llm_calls", "seconds", "valid/1k_calls", "valid/sec");
  auto row = [](const MemorizationRun& run) {
    double per_sec = run.total_seconds() > 0
                         ? run.valid_unique() / run.total_seconds()
                         : 0.0;
    std::printf("%-14s %14zu %12zu %12.2f %16.2f %14.1f\n", run.label.c_str(),
                run.valid_unique(), run.total_llm_calls(), run.total_seconds(),
                run.throughput_per_1k_calls(), per_sec);
  };
  row(relm_run);
  row(bt1);
  row(btn);
  for (const PipelineRun& pr : pipeline_runs) row(pr.run);

  bool pipeline_deterministic = true;
  for (const PipelineRun& pr : pipeline_runs) {
    if (event_fingerprint(pr.run) !=
        event_fingerprint(pipeline_runs.front().run)) {
      pipeline_deterministic = false;
    }
  }

  const bool deterministic =
      event_fingerprint(bt1) == event_fingerprint(btn);
  // Set-equality with strict serial holds for full enumerations; when a
  // budget truncates the run, the batched frontier may cross the boundary
  // with different tail members (same guarantee as the unit tests pin on
  // finite languages), so the check is advisory there.
  const bool truncated =
      relm_run.events.size() >= max_results ||
      relm_run.search_stats.expansions >= max_expansions ||
      bt1.events.size() >= max_results ||
      bt1.search_stats.expansions >= max_expansions;
  const bool same_urls = sorted_urls(relm_run) == sorted_urls(bt1);
  std::printf("\n[engine] batch=16 cache=%zu: serial %.2fs -> 1-thread %.2fs "
              "(%.2fx) -> %zu-thread %.2fs (%.2fx); cache hit rate %.1f%% "
              "(%zu hits / %zu misses, %zu evictions)\n",
              batched.cache_capacity, serial_wall, bt1_wall,
              bt1_wall > 0 ? serial_wall / bt1_wall : 0.0, pool_threads,
              btn_wall, btn_wall > 0 ? serial_wall / btn_wall : 0.0,
              100.0 * btn.search_stats.cache_hit_rate(),
              btn.search_stats.cache_hits, btn.search_stats.cache_misses,
              btn.search_stats.cache_evictions);
  std::printf("[engine] %zu-thread events byte-identical to 1-thread: %s; "
              "URL set identical to strict serial: %s\n",
              pool_threads, deterministic ? "yes" : "NO (BUG)",
              same_urls ? "yes"
                        : (truncated ? "differs at budget boundary (expected "
                                       "for truncated runs)"
                                     : "NO (BUG)"));
  for (const PipelineRun& pr : pipeline_runs) {
    const double speedup =
        pr.wall > 0 ? serial_wall / pr.wall : 0.0;
    const std::size_t memo_total = pr.run.search_stats.mask_memo_hits +
                                   pr.run.search_stats.mask_memo_misses;
    std::printf("[pipeline] %zu thread(s): %.2fs (%.2fx vs strict serial), "
                "occupancy %.1f evals/round over %zu rounds, "
                "%zu speculative, %zu wasted, %zu horizon clips, "
                "%zu shard steals, memo hit rate %.1f%%\n",
                pr.threads, pr.wall, speedup,
                pr.run.search_stats.mean_batch_occupancy(),
                pr.run.search_stats.pump_rounds,
                pr.run.search_stats.speculative_expanded,
                pr.run.search_stats.speculative_wasted,
                pr.run.search_stats.horizon_clips,
                pr.run.search_stats.frontier_shard_steals,
                memo_total ? 100.0 * pr.run.search_stats.mask_memo_hits /
                                 static_cast<double>(memo_total)
                           : 0.0);
  }
  std::printf("[pipeline] events byte-identical across the thread sweep: %s\n",
              pipeline_deterministic ? "yes" : "NO (BUG)");

  double best_baseline = 0.0;
  std::size_t best_n = 0;
  for (std::size_t n : {1, 2, 4, 8, 16, 32, 64}) {
    MemorizationRun run = run_baseline_url_extraction(
        world, *world.xl, n, static_cast<std::size_t>(600 * scale), 91 + n);
    row(run);
    if (run.throughput_per_1k_calls() > best_baseline) {
      best_baseline = run.throughput_per_1k_calls();
      best_n = n;
    }
  }

  std::printf("\nrelm vs best baseline (n=%zu): %.1fx higher throughput per "
              "LLM call over the full run (paper: 15x)\n",
              best_n,
              best_baseline > 0 ? relm_run.throughput_per_1k_calls() / best_baseline
                                : 0.0);

  // Paper-style wall-to-wall comparison: work needed to reach a fixed number
  // of validated URLs (Figure 6's regime, before ReLM's long tail dilutes
  // the average).
  auto calls_to_reach = [](const MemorizationRun& run, std::size_t k) {
    std::unordered_set<std::string> seen;
    for (const auto& e : run.events) {
      if (e.valid && seen.insert(e.url).second && seen.size() >= k) {
        return e.llm_calls;
      }
    }
    return std::size_t{0};  // never reached
  };
  MemorizationRun best_run = run_baseline_url_extraction(
      world, *world.xl, best_n, static_cast<std::size_t>(600 * scale), 91 + best_n);
  std::printf("\n%-22s %12s %16s %10s\n", "valid URLs reached", "relm_calls",
              "best_baseline", "speedup");
  for (std::size_t k : {10, 25, 40}) {
    std::size_t r = calls_to_reach(relm_run, k);
    std::size_t b = calls_to_reach(best_run, k);
    if (r == 0) continue;
    if (b == 0) {
      std::printf("%-22zu %12zu %16s %10s\n", k, r, "(never)", "inf");
    } else {
      std::printf("%-22zu %12zu %16zu %9.1fx\n", k, r, b,
                  static_cast<double>(b) / static_cast<double>(r));
    }
  }

  // Machine-readable summary for scripts/bench.sh. One line, valid JSON.
  // One "pipeline_<t>_thread" section and one "speedup_<t>_thread" key per
  // RELM_BENCH_THREADS entry (speedup is against the strict serial run);
  // scripts/bench_compare.py gates the speedups and occupancy as
  // higher-is-better metrics.
  const char* want_json = std::getenv("RELM_BENCH_JSON");
  if (want_json && *want_json && std::string(want_json) != "0") {
    std::string pipeline_json;
    for (const PipelineRun& pr : pipeline_runs) {
      char buf[320];
      std::snprintf(
          buf, sizeof(buf),
          "\"pipeline_%zu_thread\":{\"wall_seconds\":%.4f,\"llm_calls\":%zu,"
          "\"cache_hit_rate\":%.4f,\"batch_occupancy_mean\":%.2f,"
          "\"speculative_wasted\":%zu,\"horizon_clips\":%zu},"
          "\"speedup_%zu_thread\":%.3f,",
          pr.threads, pr.wall, pr.run.total_llm_calls(),
          pr.run.search_stats.cache_hit_rate(),
          pr.run.search_stats.mean_batch_occupancy(),
          pr.run.search_stats.speculative_wasted,
          pr.run.search_stats.horizon_clips, pr.threads,
          pr.wall > 0 ? serial_wall / pr.wall : 0.0);
      pipeline_json += buf;
    }
    std::printf(
        "BENCH_JSON {\"bench\":\"fig06_throughput\",\"scale\":%.3f,"
        "\"serial\":{\"wall_seconds\":%.4f,\"llm_calls\":%zu,"
        "\"valid_unique\":%zu},"
        "\"batched_1_thread\":{\"wall_seconds\":%.4f,\"llm_calls\":%zu,"
        "\"cache_hit_rate\":%.4f},"
        "\"batched_%zu_threads\":{\"wall_seconds\":%.4f,\"llm_calls\":%zu,"
        "\"cache_hit_rate\":%.4f},"
        "%s"
        "\"threads\":%zu,\"expansion_batch\":16,"
        "\"speedup_batched_1_thread\":%.3f,\"speedup_batched_%zu_threads\":%.3f,"
        "\"deterministic_across_threads\":%s,"
        "\"pipeline_deterministic_across_threads\":%s,"
        "\"same_urls_as_serial\":%s,"
        "\"budget_truncated\":%s,\"metrics\":%s}\n",
        scale, serial_wall, relm_run.total_llm_calls(), relm_run.valid_unique(),
        bt1_wall, bt1.total_llm_calls(), bt1.search_stats.cache_hit_rate(),
        pool_threads, btn_wall, btn.total_llm_calls(),
        btn.search_stats.cache_hit_rate(), pipeline_json.c_str(), pool_threads,
        bt1_wall > 0 ? serial_wall / bt1_wall : 0.0, pool_threads,
        btn_wall > 0 ? serial_wall / btn_wall : 0.0,
        deterministic ? "true" : "false",
        pipeline_deterministic ? "true" : "false",
        same_urls ? "true" : "false",
        truncated ? "true" : "false", bench::metrics_json().c_str());
  }

  // Determinism and (untruncated) set-equivalence are correctness
  // properties, not performance: fail loudly so CI's bench smoke catches
  // regressions.
  if (!deterministic || !pipeline_deterministic || (!same_urls && !truncated)) {
    return 1;
  }
  return 0;
}
