// Figure 6: validated-URLs-per-second throughput for ReLM and the random
// generation baselines of fixed length n. The paper's optimal baseline
// (n = 16) is still 15x slower than ReLM. We report throughput both per
// 1000 LLM calls (deterministic) and per wall-clock second.

#include <unordered_set>

#include "bench_util.hpp"
#include "experiments/memorization.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  bench::print_header("fig06_throughput — validated URLs per unit work",
                      "Figure 6 (§4.1): best baseline n is ~16, still far "
                      "slower than ReLM");
  World world = bench::build_bench_world();

  const double scale = bench_scale_from_env();
  MemorizationRun relm_run = run_relm_url_extraction(
      world, *world.xl, static_cast<std::size_t>(4000 * scale),
      static_cast<std::size_t>(40000 * scale));

  std::printf("%-14s %14s %12s %12s %16s %14s\n", "run", "valid_unique",
              "llm_calls", "seconds", "valid/1k_calls", "valid/sec");
  auto row = [](const MemorizationRun& run) {
    double per_sec = run.total_seconds() > 0
                         ? run.valid_unique() / run.total_seconds()
                         : 0.0;
    std::printf("%-14s %14zu %12zu %12.2f %16.2f %14.1f\n", run.label.c_str(),
                run.valid_unique(), run.total_llm_calls(), run.total_seconds(),
                run.throughput_per_1k_calls(), per_sec);
  };
  row(relm_run);

  double best_baseline = 0.0;
  std::size_t best_n = 0;
  for (std::size_t n : {1, 2, 4, 8, 16, 32, 64}) {
    MemorizationRun run = run_baseline_url_extraction(
        world, *world.xl, n, static_cast<std::size_t>(600 * scale), 91 + n);
    row(run);
    if (run.throughput_per_1k_calls() > best_baseline) {
      best_baseline = run.throughput_per_1k_calls();
      best_n = n;
    }
  }

  std::printf("\nrelm vs best baseline (n=%zu): %.1fx higher throughput per "
              "LLM call over the full run (paper: 15x)\n",
              best_n,
              best_baseline > 0 ? relm_run.throughput_per_1k_calls() / best_baseline
                                : 0.0);

  // Paper-style wall-to-wall comparison: work needed to reach a fixed number
  // of validated URLs (Figure 6's regime, before ReLM's long tail dilutes
  // the average).
  auto calls_to_reach = [](const MemorizationRun& run, std::size_t k) {
    std::unordered_set<std::string> seen;
    for (const auto& e : run.events) {
      if (e.valid && seen.insert(e.url).second && seen.size() >= k) {
        return e.llm_calls;
      }
    }
    return std::size_t{0};  // never reached
  };
  MemorizationRun best_run = run_baseline_url_extraction(
      world, *world.xl, best_n, static_cast<std::size_t>(600 * scale), 91 + best_n);
  std::printf("\n%-22s %12s %16s %10s\n", "valid URLs reached", "relm_calls",
              "best_baseline", "speedup");
  for (std::size_t k : {10, 25, 40}) {
    std::size_t r = calls_to_reach(relm_run, k);
    std::size_t b = calls_to_reach(best_run, k);
    if (r == 0) continue;
    if (b == 0) {
      std::printf("%-22zu %12zu %16s %10s\n", k, r, "(never)", "inf");
    } else {
      std::printf("%-22zu %12zu %16zu %9.1fx\n", k, r, b,
                  static_cast<double>(b) / static_cast<double>(r));
    }
  }
  return 0;
}
