// Table 1 (§4.4): zero-shot LAMBADA-style cloze accuracy under the four
// query formulations, for both model sizes. The paper reports (GPT-2 XL /
// GPT-2): baseline 41.6/27, words 56.6/43, terminated 65/46.4,
// no_stop 71/52.2 — accuracy rises monotonically as structure is added, and
// the larger model wins everywhere.

#include "bench_util.hpp"
#include "experiments/lambada.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  util::Timer bench_timer;
  bench::print_header("table1_lambada — zero-shot cloze accuracy",
                      "Table 1 + Observation 6 (§4.4)");
  World world = bench::build_bench_world();

  LambadaSettings settings;
  settings.num_examples = static_cast<std::size_t>(
      300 * bench_scale_from_env());

  const LambadaVariant variants[] = {
      LambadaVariant::kBaseline, LambadaVariant::kWords,
      LambadaVariant::kTerminated, LambadaVariant::kNoStop};

  std::printf("%-10s %10s %10s %12s %10s\n", "model", "baseline", "words",
              "terminated", "no_stop");
  struct Row {
    const char* name;
    const model::NgramModel* model;
  };
  for (const Row& row : {Row{"sim-xl", world.xl.get()},
                         Row{"sim-small", world.small.get()}}) {
    std::printf("%-10s", row.name);
    LambadaResult last_result;
    for (LambadaVariant variant : variants) {
      LambadaResult result = run_lambada(world, *row.model, variant, settings);
      std::printf(" %9.1f%%", 100 * result.accuracy());
      if (variant == LambadaVariant::kNoStop) last_result = result;
    }
    std::printf("\n");
  }
  std::printf("%-10s %9.1f%% %9.1f%% %11.1f%% %9.1f%%   (paper, GPT-2 XL)\n",
              "paper-xl", 41.6, 56.6, 65.0, 71.0);
  std::printf("%-10s %9.1f%% %9.1f%% %11.1f%% %9.1f%%   (paper, GPT-2)\n\n",
              "paper-sm", 27.0, 43.0, 46.4, 52.2);

  // Qualitative check (§4.4.2): adding structure removes generic answers.
  std::printf("most frequent predictions by variant (sim-xl):\n");
  for (LambadaVariant variant : variants) {
    LambadaResult result = run_lambada(world, *world.xl, variant, settings);
    std::printf("  %-12s:", lambada_variant_name(variant));
    for (const auto& [word, count] : result.top_predictions(5)) {
      std::printf(" %s(%zu)", word.c_str(), count);
    }
    std::printf("\n");
  }
  bench::print_footnote(
      "shape to check: monotone gains baseline->words->terminated->no_stop; "
      "sim-xl above sim-small; top predictions shift from generic words to "
      "content words");
  bench::print_bench_json_footer("table1_lambada", bench_timer.seconds());
  return 0;
}
