// Microbenchmarks (google-benchmark) for ReLM's graph-compiler pipeline:
// regex compilation, token-automaton construction (the O(V k m_max)
// shortcut-edge algorithm of §3.2/§B), canonical enumeration, Levenshtein
// expansion, and walk counting. These are the ablation measurements DESIGN.md
// calls out for the compiler's design choices.

#include <benchmark/benchmark.h>

#include "automata/algebra.hpp"
#include "automata/determinize.hpp"
#include "automata/levenshtein.hpp"
#include "automata/regex_parser.hpp"
#include "automata/regex.hpp"
#include "automata/walks.hpp"
#include "core/compiler.hpp"
#include "core/pipeline/cache.hpp"
#include "core/pipeline/pipeline.hpp"
#include "experiments/setup.hpp"

namespace {

using namespace relm;

const experiments::World& world() {
  static experiments::World w = experiments::build_world(
      experiments::WorldConfig::scaled(0.25));
  return w;
}

const char* kUrlPattern =
    "https://www.([a-zA-Z0-9]|\\-|_|#|%)+.([a-zA-Z0-9]|\\-|_|#|%|/)+";
const char* kDatePattern =
    "((January)|(February)|(March)|(April)|(May)|(June)|(July)|(August)|"
    "(September)|(October)|(November)|(December)) [0-9]{1,2}, [0-9]{4}";

void BM_RegexCompileUrl(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::compile_regex(kUrlPattern));
  }
}
BENCHMARK(BM_RegexCompileUrl);

void BM_RegexCompileDate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::compile_regex(kDatePattern));
  }
}
BENCHMARK(BM_RegexCompileDate);

// Boolean-algebra compilation, lazy (on-the-fly product/subset) vs eager
// (determinize every leaf, compose DFA ops bottom-up). The pattern is the
// adversarial case the lazy path exists for: the left operand's subset
// space is ~2^15 states, but intersecting with a 4-string language makes
// almost all of it unreachable — lazy explores only the reachable product.
const char* kAlgebraPattern = "((a|b)*a(a|b){14})&(a{0,3})";

void BM_CompileAlgebraLazy(benchmark::State& state) {
  automata::RegexPtr ast = automata::parse_regex(kAlgebraPattern);
  automata::AlgebraOptions options;
  options.lazy = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::compile_ast(*ast, options));
  }
}
BENCHMARK(BM_CompileAlgebraLazy);

void BM_CompileAlgebraEager(benchmark::State& state) {
  automata::RegexPtr ast = automata::parse_regex(kAlgebraPattern);
  automata::AlgebraOptions options;
  options.lazy = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::compile_ast(*ast, options));
  }
}
BENCHMARK(BM_CompileAlgebraEager);

void BM_TokenAutomatonAllTokensUrl(benchmark::State& state) {
  automata::Dfa chars = automata::compile_regex(kUrlPattern);
  (void)world();  // build the shared world outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile_token_automaton(
        chars, *world().tokenizer, core::TokenizationStrategy::kAllTokens));
  }
  state.counters["dfa_states"] = static_cast<double>(chars.num_states());
}
BENCHMARK(BM_TokenAutomatonAllTokensUrl);

void BM_TokenAutomatonTrieVariant(benchmark::State& state) {
  // The trie-sharing alternative construction over the same pattern.
  automata::Dfa chars = automata::compile_regex(kUrlPattern);
  (void)world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_all_tokens_trie_variant(chars, *world().tokenizer));
  }
}
BENCHMARK(BM_TokenAutomatonTrieVariant);

void BM_TokenAutomatonCanonicalDate(benchmark::State& state) {
  // Finite language: exercises the enumerate-and-encode path (§3.2 option 1).
  automata::Dfa chars = automata::compile_regex(
      "((January)|(February)|(March)) [0-9]{1,2}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile_token_automaton(
        chars, *world().tokenizer, core::TokenizationStrategy::kCanonicalTokens));
  }
}
BENCHMARK(BM_TokenAutomatonCanonicalDate);

void BM_LevenshteinExpandWord(benchmark::State& state) {
  automata::Dfa lang = automata::compile_regex("The man was trained in");
  int distance = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        automata::levenshtein_expand(lang, distance, automata::printable_ascii()));
  }
}
BENCHMARK(BM_LevenshteinExpandWord)->Arg(1)->Arg(2);

// Moore vs Hopcroft on a mid-sized machine (the Levenshtein expansion's
// intermediate determinized automaton).
void BM_MinimizeMoore(benchmark::State& state) {
  automata::Dfa big = automata::compile_regex_unminimized(
      "((the )|(a ))?((cat)|(dog)|(cow)|(fox)|(owl))s? ((ran)|(sat)|(slept))"
      "( (quickly|slowly|quietly))?");
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::minimize(big));
  }
  state.counters["input_states"] = static_cast<double>(big.num_states());
}
BENCHMARK(BM_MinimizeMoore);

void BM_MinimizeHopcroft(benchmark::State& state) {
  automata::Dfa big = automata::compile_regex_unminimized(
      "((the )|(a ))?((cat)|(dog)|(cow)|(fox)|(owl))s? ((ran)|(sat)|(slept))"
      "( (quickly|slowly|quietly))?");
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::minimize_hopcroft(big));
  }
}
BENCHMARK(BM_MinimizeHopcroft);

void BM_WalkCounts(benchmark::State& state) {
  automata::Dfa lang = automata::levenshtein_expand(
      automata::compile_regex("The man was trained in"), 1,
      automata::printable_ascii());
  core::TokenAutomaton ta = core::compile_token_automaton(
      lang, *world().tokenizer, core::TokenizationStrategy::kAllTokens);
  for (auto _ : state) {
    automata::WalkCounts walks(ta.dfa, 40);
    benchmark::DoNotOptimize(walks.total());
  }
  state.counters["token_states"] = static_cast<double>(ta.dfa.num_states());
}
BENCHMARK(BM_WalkCounts);

// Cold vs warm query compilation through the pass pipeline and the artifact
// cache (docs/ARCHITECTURE.md). Cold runs the full seven-pass chain every
// iteration; warm hits the in-memory content-addressed cache. The ratio is
// the cache's reason to exist — the CI bench gate watches both.
core::SimpleSearchQuery cache_bench_query() {
  core::SimpleSearchQuery query;
  query.query_string.query_str = kDatePattern;
  query.tokenization_strategy = core::TokenizationStrategy::kCanonicalTokens;
  return query;
}

void BM_CompileQueryCold(benchmark::State& state) {
  core::SimpleSearchQuery query = cache_bench_query();
  (void)world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::pipeline::compile_query_artifact(query, *world().tokenizer));
  }
}
BENCHMARK(BM_CompileQueryCold);

void BM_CompileQueryWarm(benchmark::State& state) {
  core::SimpleSearchQuery query = cache_bench_query();
  core::pipeline::ArtifactCache cache;
  // Prime outside the timed region; every timed iteration is a cache hit.
  (void)core::pipeline::compile_cached(query, *world().tokenizer, &cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::pipeline::compile_cached(query, *world().tokenizer, &cache));
  }
  state.counters["cache_hits"] = static_cast<double>(cache.stats().hits);
}
BENCHMARK(BM_CompileQueryWarm);

void BM_BpeEncode(benchmark::State& state) {
  const std::string text =
      "The man was trained in computer science at the lighthouse. "
      "Documentation lives at https://www.example.org/path now.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(world().tokenizer->encode(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_BpeEncode);

}  // namespace

BENCHMARK_MAIN();
