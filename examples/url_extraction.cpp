// Data-memorization audit (§4.1): extract URLs the model memorized during
// training, using the full experiment world (synthetic corpus + trained
// simulator). Shows the streaming result interface: matches arrive most
// probable first and are validated against the URL registry — the stand-in
// for the paper's live HTTPS checks.

#include <cstdio>

#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "experiments/setup.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  World world = build_world(WorldConfig::scaled(0.5));

  core::SimpleSearchQuery query;
  query.query_string.query_str = url_pattern();
  query.query_string.prefix_str = "https://www.";
  query.decoding.top_k = 40;
  query.max_results = 1500;
  query.max_expansions = 15000;
  query.sequence_length = 24;

  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world.tokenizer);
  core::ShortestPathSearch search(*world.xl, compiled, query);

  std::printf("streaming URL candidates (validated ones marked):\n");
  std::size_t shown = 0;
  std::size_t valid = 0;
  while (auto result = search.next()) {
    bool ok = world.corpus.url_registry.is_valid(result->text);
    if (ok) {
      ++valid;
      std::printf("  VALID  #%-3zu %-46s log p = %6.2f  (llm calls: %zu)\n",
                  valid, result->text.c_str(), result->log_prob,
                  result->llm_calls_at_emission);
    } else if (shown < 5) {
      // Show a few of the unvalidated candidates (prefixes / fabrications).
      std::printf("  -      %-50s log p = %6.2f\n", result->text.c_str(),
                  result->log_prob);
      ++shown;
    }
    if (valid >= 15) break;
  }
  std::printf("\nextracted %zu validated URLs with %zu LLM calls; the corpus "
              "planted %zu memorized URLs\n",
              valid, search.stats().llm_calls, world.corpus.memorized_urls.size());
  return 0;
}
