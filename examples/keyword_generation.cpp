// Constrained decoding beyond validation (§3: "while ReLM is motivated by
// LLM validation, it can be used in other constrained decoding applications
// (e.g., generation from keywords)").
//
// Part 1 generates the model's most natural sentences containing the
// keywords "lantern" and "harbor" from a template space — exact, fast, and
// ranked by probability.
//
// Part 2 tries the same with free prose around the keywords and shows why
// that is hard for *any* left-to-right method: beams die at the automaton
// boundary before "committing" to the keyword, and exact search must wade
// through every higher-probability prose prefix first. This is precisely the
// limitation the paper's conclusion names — "left-to-right autoregressive
// decoding has an affinity toward suffix completions" — left as future work.

#include <cstdio>

#include "core/relm.hpp"
#include "experiments/setup.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  World world = build_world(WorldConfig::scaled(0.5));

  // --- Part 1: keywords in a template space ---------------------------------
  core::SimpleSearchQuery query;
  query.query_string.query_str =
      "((The)|(A)) ((engineer)|(farmer)|(captain)|(baker)|(gardener)|"
      "(merchant)|(traveler)) ((repaired)|(carried)|(traded)|(polished)|"
      "(sketched)|(collected)) the lantern near the harbor.";
  query.decoding.top_k = 40;
  query.max_results = 5;
  query.max_expansions = 4000;

  std::printf("part 1 — keywords 'lantern'+'harbor' over a template space "
              "(2x7x6 = 84 candidates):\n");
  auto outcome = search(*world.xl, *world.tokenizer, query);
  for (const auto& result : outcome.results) {
    std::printf("  %7.2f  \"%s\"\n", result.log_prob, result.text.c_str());
  }
  std::printf("  [%zu llm calls]\n\n", outcome.stats.llm_calls);

  // --- Part 2: keywords in free prose ----------------------------------------
  core::SimpleSearchQuery loose;
  loose.query_string.query_str =
      "[A-Z][a-z ]{2,40}lantern[a-z ]{1,24}harbor(\\.|!)";
  loose.decoding.top_k = 40;
  loose.max_results = 3;
  loose.max_expansions = 4000;
  loose.sequence_length = 24;

  std::printf("part 2 — the same keywords in free prose:\n");
  auto exact = search(*world.xl, *world.tokenizer, loose);
  std::printf("  shortest path, %zu-expansion budget: %zu results "
              "(%zu llm calls)\n",
              loose.max_expansions, exact.results.size(),
              exact.stats.llm_calls);

  loose.search_strategy = core::SearchStrategy::kBeam;
  loose.beam_width = 32;
  auto beam = search(*world.xl, *world.tokenizer, loose);
  std::printf("  beam width 32:               %zu results (%zu llm calls)\n",
              beam.results.size(), beam.stats.llm_calls);
  for (const auto& result : beam.results) {
    std::printf("    %7.2f  \"%s\"\n", result.log_prob, result.text.c_str());
  }

  std::printf(
      "\nwhy part 2 struggles: every high-probability prose prefix matches\n"
      "[a-z ]* until the automaton finally demands 'lantern', so exact search\n"
      "must exhaust all likelier prefixes first, and beams die at the class\n"
      "boundary before committing to the keyword. The paper's conclusion\n"
      "calls this out — autoregressive decoding favors suffix completions —\n"
      "and anchoring keywords in structure (part 1) is the practical fix.\n");
  return 0;
}
