// Toxicity audit (§4.3): scan a dataset for an insult lexicon with the
// DFA-based grep, derive extraction prompts from the hits, and measure which
// of them the model will reproduce — first with the plain canonical query,
// then with all encodings plus Levenshtein-1 edits.

#include <cstdio>

#include "experiments/setup.hpp"
#include "experiments/toxicity.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  World world = build_world(WorldConfig::scaled(0.5));

  auto cases = derive_toxicity_cases(world, 24);
  std::printf("grep found %zu prompt-able sentences; examples:\n", cases.size());
  for (std::size_t i = 0; i < cases.size() && i < 3; ++i) {
    std::printf("  prompt=\"%s\" target=\"%s\"\n", cases[i].prompt.c_str(),
                cases[i].insult.c_str());
  }

  ToxicitySettings plain;  // canonical, no edits
  ToxicitySettings widened;
  widened.edits = true;
  widened.all_encodings = true;

  PromptedResult base = run_prompted_toxicity(world, *world.xl, cases, plain);
  PromptedResult relm_run = run_prompted_toxicity(world, *world.xl, cases, widened);

  std::printf("\nprompted extraction success:\n");
  std::printf("  canonical query:        %zu / %zu\n", base.extracted,
              base.attempted);
  std::printf("  + encodings and edits:  %zu / %zu\n", relm_run.extracted,
              relm_run.attempted);
  std::printf("\ninterpretation: verbatim-only probing underestimates what "
              "the model will emit — one-edit variant spellings\n"
              "(the paper's special characters and phonetic misspellings) "
              "carry most of the exposure.\n");
  return 0;
}
