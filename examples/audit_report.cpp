// A one-shot model validation report — the product the paper's introduction
// argues for: one query abstraction covering memorization, bias, toxicity,
// and language understanding, producing a per-area scorecard instead of
// ad-hoc test harnesses. Runs every §4 probe at reduced scale against the
// sim-xl model and prints a summary a model owner could act on.

#include <cstdio>

#include "experiments/bias.hpp"
#include "experiments/lambada.hpp"
#include "experiments/memorization.hpp"
#include "experiments/setup.hpp"
#include "experiments/toxicity.hpp"

using namespace relm;
using namespace relm::experiments;

int main() {
  World world = build_world(WorldConfig::scaled(0.5));
  const model::NgramModel& model = *world.xl;
  std::printf("================ model validation report: sim-xl ================\n\n");

  // --- 1. memorization --------------------------------------------------------
  MemorizationRun urls = run_relm_url_extraction(world, model, 1500, 15000);
  std::printf("[memorization]  %zu unique training URLs recoverable "
              "(%zu model calls; %zu planted verbatim)\n",
              urls.valid_unique(), urls.total_llm_calls(),
              world.corpus.memorized_urls.size());
  std::printf("                -> the model leaks memorized training URLs; "
              "apply deduplication or DP training if these are sensitive\n\n");

  // --- 2. bias -----------------------------------------------------------------
  BiasRun bias = run_bias(world, model, BiasVariant{true, true, false}, 800, 1);
  auto man = bias.distribution(0);
  auto woman = bias.distribution(1);
  double worst_gap = 0;
  std::size_t worst = 0;
  for (std::size_t i = 0; i < bias.professions.size(); ++i) {
    double gap = std::abs(man[i] - woman[i]);
    if (gap > worst_gap) {
      worst_gap = gap;
      worst = i;
    }
  }
  std::printf("[bias]          chi2 log10(p) = %.1f; largest gendered gap: "
              "%s (%.2f vs %.2f)\n",
              bias.chi2.log10_p_value, bias.professions[worst].c_str(),
              man[worst], woman[worst]);
  std::printf("                -> gendered profession associations are "
              "statistically unambiguous at this sample size\n\n");

  // --- 3. toxicity -------------------------------------------------------------
  auto cases = derive_toxicity_cases(world, 40);
  ToxicitySettings widened;
  widened.edits = true;
  widened.all_encodings = true;
  PromptedResult verbatim = run_prompted_toxicity(world, model, cases, {});
  PromptedResult edit_tolerant = run_prompted_toxicity(world, model, cases, widened);
  std::printf("[toxicity]      prompted extraction: %.0f%% verbatim, %.0f%% "
              "within one character edit (%zu dataset-derived prompts)\n",
              100 * verbatim.success_rate(), 100 * edit_tolerant.success_rate(),
              cases.size());
  std::printf("                -> verbatim-only filters underestimate "
              "exposure by %.1fx; screen edit neighborhoods too\n\n",
              verbatim.extracted
                  ? static_cast<double>(edit_tolerant.extracted) / verbatim.extracted
                  : 0.0);

  // --- 4. language understanding ----------------------------------------------
  LambadaSettings settings;
  settings.num_examples = 120;
  double base =
      run_lambada(world, model, LambadaVariant::kBaseline, settings).accuracy();
  double tuned =
      run_lambada(world, model, LambadaVariant::kNoStop, settings).accuracy();
  std::printf("[understanding] cloze accuracy %.0f%% unconstrained -> %.0f%% "
              "with structured queries (+%.0f points)\n",
              100 * base, 100 * tuned, 100 * (tuned - base));
  std::printf("                -> much of the apparent error is query "
              "formulation, not model knowledge; constrain before concluding\n");

  std::printf("\n==================================================================\n");
  return 0;
}
