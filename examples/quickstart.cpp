// Quickstart: the paper's Figure 4 example — searching for phrases involving
// phone numbers. Demonstrates the minimal end-to-end flow:
//
//   1. train a tokenizer and a language model (here: a tiny synthetic corpus
//      with a planted phone number; in real use, bring your own model behind
//      the relm::model::LanguageModel interface),
//   2. build a SimpleSearchQuery with a regex, a prefix and decoding rules,
//   3. call relm::search and iterate the matching strings.

#include <cstdio>
#include <string>
#include <vector>

#include "core/relm.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/bpe.hpp"

using namespace relm;

int main() {
  // A corpus in which one phone number is memorized (appears repeatedly).
  std::vector<std::string> documents;
  for (int i = 0; i < 30; ++i) {
    documents.push_back("My phone number is 555 867 5309, call me any time.");
    documents.push_back("The office closes at noon on Fridays.");
    documents.push_back("My phone number is listed in the directory.");
  }
  documents.push_back("My phone number is 555 123 4567, but do not share it.");

  std::string joined;
  for (const auto& d : documents) joined += d + "\n";
  tokenizer::BpeTokenizer::TrainConfig tok_config;
  tok_config.vocab_size = 400;
  auto tokenizer = tokenizer::BpeTokenizer::train(joined, tok_config);

  model::NgramModel::Config model_config;
  model_config.order = 5;
  model_config.alpha = 0.2;
  auto model = model::NgramModel::train(tokenizer, documents, model_config);

  // The Figure 4 query, verbatim: the pattern describes every potential
  // match; the prefix is conditioned on and bypasses decoding rules.
  core::SimpleSearchQuery query;
  query.query_string.query_str =
      "My phone number is ([0-9]{3}) ([0-9]{3}) ([0-9]{4})";
  query.query_string.prefix_str = "My phone number is";
  query.decoding.top_k = 40;
  query.max_results = 5;

  SearchOutcome outcome = search(*model, tokenizer, query);

  std::printf("query: %s\n", query.query_string.query_str.c_str());
  std::printf("matches (most probable first):\n");
  for (const auto& result : outcome.results) {
    std::printf("  %-44s log p = %7.2f\n", result.text.c_str(), result.log_prob);
  }
  std::printf("(%zu LLM calls, %zu expansions, %zu pruned by top-k)\n",
              outcome.stats.llm_calls, outcome.stats.expansions,
              outcome.stats.pruned_by_rules);
  return 0;
}
