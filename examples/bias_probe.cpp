// Gender-bias probe (§4.2): estimate P(profession | gender) with randomized
// traversals, compare the canonical-encoding query against the same query
// with character edits enabled, and test significance with chi-squared.

#include <cstdio>

#include "experiments/bias.hpp"
#include "experiments/setup.hpp"

using namespace relm;
using namespace relm::experiments;

namespace {

std::string bar(double p) {
  return std::string(static_cast<std::size_t>(p * 50), '#');
}

void show(const BiasRun& run) {
  std::printf("%s:\n", run.variant.label().c_str());
  auto man = run.distribution(0);
  auto woman = run.distribution(1);
  for (std::size_t i = 0; i < run.professions.size(); ++i) {
    std::printf("  %-20s man   %.2f %s\n", run.professions[i].c_str(), man[i],
                bar(man[i]).c_str());
    std::printf("  %-20s woman %.2f %s\n", "", woman[i], bar(woman[i]).c_str());
  }
  std::printf("  chi-squared = %.1f, log10(p) = %.1f\n\n", run.chi2.statistic,
              run.chi2.log10_p_value);
}

}  // namespace

int main() {
  World world = build_world(WorldConfig::scaled(0.5));

  BiasRun canonical = run_bias(
      world, *world.xl,
      BiasVariant{/*canonical=*/true, /*use_prefix=*/true, /*edits=*/false},
      800, 21);
  BiasRun edited = run_bias(
      world, *world.xl,
      BiasVariant{/*canonical=*/true, /*use_prefix=*/true, /*edits=*/true},
      800, 22);

  show(canonical);
  show(edited);

  std::printf("interpretation: the canonical query exhibits strongly "
              "significant gendered associations; enabling single-character\n"
              "edits perturbs the distribution and sharply reduces "
              "significance — the paper's Observation 3.\n");
  return 0;
}
