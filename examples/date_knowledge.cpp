// Figure 1 / Figure 11: testing an LLM's knowledge of George Washington's
// birth date three ways —
//   (1a) multiple choice over a handful of dates (rank_choices),
//   (1b) free response (unconstrained sampling; may answer anything),
//   (1c) a ReLM structured query over ALL dates of the form
//        "<Month> <Day>, <Year>", which has the specificity of (1a) with the
//        generality of (1b).
// The model is trained so the correct date is memorized but a distractor
// ("this day in 1732"-style prose) is also frequent, reproducing the
// figure's failure mode for free response.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/sampling_baseline.hpp"
#include "core/relm.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/bpe.hpp"
#include "util/rng.hpp"

using namespace relm;

int main() {
  std::vector<std::string> documents;
  for (int i = 0; i < 12; ++i) {
    documents.push_back("George Washington was born on February 22, 1732.");
  }
  for (int i = 0; i < 20; ++i) {
    documents.push_back("George Washington was born on this day in 1732, they said.");
    documents.push_back("George Washington was born on a farm near the river.");
  }
  for (int i = 0; i < 10; ++i) {
    documents.push_back("The treaty was signed on July 4, 1776.");
    documents.push_back("The council met on November 22, 1963.");
  }

  std::string joined;
  for (const auto& d : documents) joined += d + "\n";
  tokenizer::BpeTokenizer::TrainConfig tok_config;
  tok_config.vocab_size = 512;
  auto tokenizer = tokenizer::BpeTokenizer::train(joined, tok_config);
  model::NgramModel::Config model_config;
  model_config.order = 5;
  model_config.alpha = 0.4;
  auto model = model::NgramModel::train(tokenizer, documents, model_config);

  const std::string prompt = "George Washington was born on";

  // --- (1a) multiple choice -------------------------------------------------
  std::printf("(1a) multiple choice:\n");
  auto ranked = baselines::rank_choices(
      *model, tokenizer, prompt,
      {" July 4, 1732", " November 22, 1732", " February 22, 1732"});
  for (const auto& choice : ranked) {
    std::printf("  %-22s log p = %7.2f\n", choice.completion.c_str(),
                choice.log_prob);
  }

  // --- (1b) free response ---------------------------------------------------
  std::printf("\n(1b) free response (random samples):\n");
  util::Pcg32 rng(7);
  model::DecodingRules rules;
  rules.top_k = 40;
  auto prompt_tokens = tokenizer.encode(prompt);
  for (int i = 0; i < 4; ++i) {
    auto generated = model::generate(*model, prompt_tokens, 10, rules, rng);
    while (!generated.empty() && generated.back() == model->eos()) {
      generated.pop_back();
    }
    std::printf("  \"%s%s\"\n", prompt.c_str(),
                tokenizer.decode(generated).c_str());
  }

  // --- (1c) the ReLM query over any date (Figure 11's code, verbatim) -------
  std::printf("\n(1c) relm query over all dates:\n");
  core::SimpleSearchQuery query;
  query.query_string.query_str =
      "George Washington was born on ((January)|(February)|(March)|(April)|"
      "(May)|(June)|(July)|(August)|(September)|(October)|(November)|"
      "(December)) [0-9]{1,2}, [0-9]{4}";
  query.query_string.prefix_str = "George Washington was born on";
  query.search_strategy = core::SearchStrategy::kShortestPath;
  query.tokenization_strategy = core::TokenizationStrategy::kAllTokens;
  query.max_results = 5;

  SearchOutcome outcome = search(*model, tokenizer, query);
  int rank = 1;
  for (const auto& result : outcome.results) {
    std::printf("  #%d %-44s log p = %7.2f\n", rank++, result.text.c_str(),
                result.log_prob);
  }
  std::printf("\nsearch space: 12 months x 1-2 digit days x 4-digit years "
              "= %d candidate dates, never enumerated\n", 12 * 110 * 10000);
  return 0;
}
