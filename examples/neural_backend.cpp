// Model-agnosticism: the same ReLM query executed against two different
// model families — the n-gram simulator and a neural probabilistic LM
// trained from scratch — with zero engine changes. This is the conclusion's
// "extend ReLM to other families of models" demonstrated at the interface
// level: anything implementing relm::model::LanguageModel plugs in.

#include <cstdio>

#include "core/relm.hpp"
#include "model/mlp_model.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/bpe.hpp"

using namespace relm;

int main() {
  std::vector<std::string> documents;
  for (int i = 0; i < 30; ++i) {
    documents.push_back("the parcel goes to the harbor office .");
    documents.push_back("the letter goes to the garden office .");
    documents.push_back("the parcel came from the museum .");
  }

  std::string joined;
  for (const auto& d : documents) joined += d + "\n";
  tokenizer::BpeTokenizer::TrainConfig tok_config;
  tok_config.vocab_size = 240;
  auto tok = tokenizer::BpeTokenizer::train(joined, tok_config);

  model::NgramModel::Config ngram_config;
  ngram_config.order = 6;
  auto ngram = model::NgramModel::train(tok, documents, ngram_config);

  model::MlpModel::Config mlp_config;
  mlp_config.context_size = 5;
  mlp_config.embedding_dim = 12;
  mlp_config.hidden_dim = 24;
  mlp_config.epochs = 6;
  auto mlp = model::MlpModel::train(tok, documents, mlp_config);
  std::printf("trained NPLM: loss %.2f -> %.2f nats/token over %zu epochs\n\n",
              mlp->epoch_losses().front(), mlp->epoch_losses().back(),
              mlp->epoch_losses().size());

  core::SimpleSearchQuery query;
  query.query_string.query_str =
      "the ((parcel)|(letter)) goes to the ((harbor)|(garden)|(museum)) office";
  query.query_string.prefix_str = "the ((parcel)|(letter)) goes to the";
  query.max_results = 6;

  for (const auto& [name, model] :
       {std::pair<const char*, const model::LanguageModel*>{"n-gram", ngram.get()},
        std::pair<const char*, const model::LanguageModel*>{"neural", mlp.get()}}) {
    std::printf("%s backend:\n", name);
    auto outcome = search(*model, tok, query);
    for (const auto& result : outcome.results) {
      std::printf("  %7.2f  \"%s\"\n", result.log_prob, result.text.c_str());
    }
    std::printf("\n");
  }
  std::printf("both backends rank the trained pairings (parcel->harbor, "
              "letter->garden) first; only the numbers differ.\n");
  return 0;
}
