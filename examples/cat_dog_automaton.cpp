// Figures 2, 3, and 12: the compilation pipeline for the query
// "The ((cat)|(dog))" — the character-level Natural Language Automaton, the
// canonical-encoding LLM automaton (Fig 3b), and the ambiguous-encoding LLM
// automaton (Fig 3a / Fig 12) — dumped as Graphviz dot plus summary counts.

#include <cstdio>

#include "automata/io.hpp"
#include "automata/regex.hpp"
#include "automata/walks.hpp"
#include "core/compiler.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/bpe.hpp"

using namespace relm;

int main() {
  // A tokenizer trained on cat/dog prose so that "The", " cat", " dog" and
  // their subwords all exist (the ingredients of the figures).
  std::string corpus;
  for (int i = 0; i < 80; ++i) corpus += "The cat saw the dog. The dog ran. ";
  tokenizer::BpeTokenizer::TrainConfig config;
  config.vocab_size = 360;
  auto tok = tokenizer::BpeTokenizer::train(corpus, config);

  automata::Dfa chars = automata::compile_regex("The ((cat)|(dog))");
  std::printf("=== character automaton (Natural Language Automaton) ===\n");
  std::printf("%s\n", automata::to_dot(chars, automata::byte_symbol_name).c_str());

  auto token_name = [&](automata::Symbol s) {
    std::string t = tok.token_string(static_cast<tokenizer::TokenId>(s));
    std::string out;
    for (char c : t) out += (c == ' ') ? "\xc4\xa0" : std::string(1, c);  // Ġ
    return out;
  };

  core::TokenAutomaton canonical = core::compile_token_automaton(
      chars, tok, core::TokenizationStrategy::kCanonicalTokens);
  std::printf("=== canonical-encoding LLM automaton (Figure 3b) ===\n");
  std::printf("%s\n", automata::to_dot(canonical.dfa, token_name).c_str());

  core::TokenAutomaton full = core::compile_token_automaton(
      chars, tok, core::TokenizationStrategy::kAllTokens);
  std::printf("=== ambiguous-encoding LLM automaton (Figures 3a / 12) ===\n");
  std::printf("%s\n", automata::to_dot(full.dfa, token_name).c_str());

  automata::WalkCounts canonical_walks(canonical.dfa, 16);
  automata::WalkCounts full_walks(full.dfa, 16);
  std::printf("accepting paths: canonical=%.0f, full=%.0f "
              "(encodings of \"The cat\" alone: %.0f)\n",
              canonical_walks.total(), full_walks.total(),
              tok.count_encodings("The cat"));
  return 0;
}
