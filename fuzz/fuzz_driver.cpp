// Unified driver for the structured fuzz targets (src/testing/fuzz_targets.*).
// Compiled once per target: CMake defines RELM_FUZZ_TARGET to the entry
// point's name (fuzz_regex_parser, fuzz_dfa_loader, ...).
//
// Two personalities, selected at configure time:
//   - RELM_LIBFUZZER (Clang only): exports LLVMFuzzerTestOneInput and links
//     -fsanitize=fuzzer, i.e. a real coverage-guided libFuzzer binary.
//   - otherwise: a plain main() that replays any corpus files given as
//     arguments and then drives the target with seeded random inputs — no
//     coverage guidance, but the same entry points, the same crash-on-bug
//     contract, deterministic under --seed, and buildable with any C++20
//     compiler (the CI fuzz-smoke job runs this under ASan).
//
//   usage: <fuzzer> [--runs N] [--seed S] [--max-len L] [corpus files...]

#include <cstddef>
#include <cstdint>

#include "testing/fuzz_targets.hpp"

#ifndef RELM_FUZZ_TARGET
#error "RELM_FUZZ_TARGET must name a relm::testing fuzz entry point"
#endif

#ifdef RELM_LIBFUZZER

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return relm::testing::RELM_FUZZ_TARGET(data, size);
}

#else  // fallback loop driver

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace {

// Random inputs biased toward the targets' grammars: raw bytes almost never
// get past the first parser check, so half the cases draw from printable
// ASCII plus the metacharacters the formats use, which reaches meaningfully
// deeper states even without coverage feedback.
std::string random_input(relm::util::Pcg32& rng, std::size_t max_len) {
  static const char kStructured[] =
      "abcd(){}[]|*+?.,\\^-$0123456789:\"eovsux \n";
  std::size_t len = rng.bounded(static_cast<std::uint32_t>(max_len) + 1);
  std::string out;
  out.reserve(len);
  bool structured = rng.uniform() < 0.5;
  for (std::size_t i = 0; i < len; ++i) {
    if (structured) {
      out += kStructured[rng.bounded(sizeof kStructured - 1)];
    } else {
      out += static_cast<char>(rng.bounded(256));
    }
  }
  return out;
}

int run_bytes(const std::string& bytes) {
  return relm::testing::RELM_FUZZ_TARGET(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 10000;
  std::uint64_t seed = 1;
  std::size_t max_len = 512;
  std::vector<std::string> corpus;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-len") == 0 && i + 1 < argc) {
      max_len = static_cast<std::size_t>(std::strtol(argv[++i], nullptr, 10));
    } else {
      corpus.push_back(argv[i]);
    }
  }

  for (const std::string& path : corpus) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read corpus file %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    run_bytes(buffer.str());
  }

  relm::util::Pcg32 rng(seed);
  for (long i = 0; i < runs; ++i) run_bytes(random_input(rng, max_len));
  std::printf("%s: %zu corpus inputs + %ld random inputs ok (seed %llu)\n",
              argv[0], corpus.size(), runs,
              static_cast<unsigned long long>(seed));
  return 0;
}

#endif  // RELM_LIBFUZZER
