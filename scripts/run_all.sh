#!/bin/sh
# Full reproduction driver: configure, build, test, and run every benchmark,
# capturing the outputs the repository's EXPERIMENTS.md cites.
#   scripts/run_all.sh [scale]
set -e
cd "$(dirname "$0")/.."
SCALE="${1:-1.0}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
RELM_BENCH_SCALE="$SCALE" sh -c 'for b in build/bench/*; do [ -f "$b" ] && [ -x "$b" ] && "$b"; done' 2>&1 | tee bench_output.txt
echo "done: test_output.txt, bench_output.txt"
