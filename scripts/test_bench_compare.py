#!/usr/bin/env python3
"""Unit tests for scripts/bench_compare.py.

Run directly (`python3 scripts/test_bench_compare.py`) or via ctest as the
`bench_compare_unit` test. Pure stdlib (unittest), no third-party deps.

Covers the contract the CI bench-gate relies on:
  - threshold math: deltas at/over/under the limit, per-benchmark overrides
    (first match wins), zero baselines;
  - missing/corrupt baseline files exit 2 (malformed input), never 1 (which
    means a real regression);
  - renamed benchmarks degrade to notes, not failures, and a snapshot pair
    with no overlap at all is malformed;
  - fig06 wall times compare only when scales agree, with the noise floor.
"""

import importlib.util
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def load_module():
    spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_compare = load_module()


def gb_snapshot(times, suite="micro_compiler", scale=None, fig06=None,
                fig06_raw=None, fig_generate=None):
    """Builds a bench.sh-shaped snapshot from {name: real_time_ns}.

    fig06 maps run name -> wall seconds; fig06_raw entries are merged into
    the fig06_throughput dict verbatim (for scalar keys like
    speedup_4_thread or sections with batch_occupancy_mean). fig_generate is
    merged verbatim as the fig_generate section.
    """
    snapshot = {
        suite: {
            "benchmarks": [
                {"name": name, "real_time": value} for name, value in times.items()
            ]
        }
    }
    if scale is not None:
        snapshot["scale"] = scale
    if fig06 is not None or fig06_raw is not None:
        snapshot["fig06_throughput"] = {
            key: {"wall_seconds": value} for key, value in (fig06 or {}).items()
        }
        snapshot["fig06_throughput"].update(fig06_raw or {})
    if fig_generate is not None:
        snapshot["fig_generate"] = fig_generate
    return snapshot


def run_compare(baseline, candidate, *extra_args):
    """Runs the script on two snapshot dicts; returns (exit_code, output)."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        cand_path = os.path.join(tmp, "cand.json")
        for path, snapshot in ((base_path, baseline), (cand_path, candidate)):
            with open(path, "w") as f:
                json.dump(snapshot, f)
        proc = subprocess.run(
            [sys.executable, SCRIPT, base_path, cand_path, *extra_args],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


class ThresholdMathTest(unittest.TestCase):
    def test_threshold_for_default_and_override_order(self):
        overrides = bench_compare.parse_overrides(
            ["BM_Compile.*=3", "BM_.*=50"])
        # First matching override wins, not the tightest.
        self.assertEqual(
            bench_compare.threshold_for("BM_CompileQueryCold", 15.0, overrides),
            3.0)
        self.assertEqual(
            bench_compare.threshold_for("BM_WalkCounts", 15.0, overrides), 50.0)
        self.assertEqual(
            bench_compare.threshold_for("fig06.x.wall_seconds", 15.0, overrides),
            15.0)

    def test_within_threshold_passes(self):
        # +14.9% against a 15% limit: not a regression.
        code, out = run_compare(gb_snapshot({"BM_A": 1000.0}),
                                gb_snapshot({"BM_A": 1149.0}))
        self.assertEqual(code, 0, out)
        self.assertIn("within threshold", out)

    def test_over_threshold_fails(self):
        code, out = run_compare(gb_snapshot({"BM_A": 1000.0}),
                                gb_snapshot({"BM_A": 1200.0}))
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_override_tightens_single_benchmark(self):
        base = gb_snapshot({"BM_A": 1000.0, "BM_B": 1000.0})
        cand = gb_snapshot({"BM_A": 1100.0, "BM_B": 1100.0})
        # +10% passes at the default 15%...
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)
        # ...but a 5% override on BM_A alone turns it into a regression.
        code, out = run_compare(base, cand, "--override", "BM_A=5")
        self.assertEqual(code, 1, out)
        self.assertIn("BM_A", out)
        self.assertNotIn("BM_B: ", out)

    def test_zero_baseline_never_divides(self):
        code, out = run_compare(gb_snapshot({"BM_A": 0.0}),
                                gb_snapshot({"BM_A": 5000.0}))
        # Delta is defined as 0 for a zero baseline: no crash, no regression.
        self.assertEqual(code, 0, out)

    def test_improvement_is_not_a_regression(self):
        code, out = run_compare(gb_snapshot({"BM_A": 2000.0}),
                                gb_snapshot({"BM_A": 500.0}))
        self.assertEqual(code, 0, out)


class MalformedInputTest(unittest.TestCase):
    def test_missing_baseline_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            cand = os.path.join(tmp, "cand.json")
            with open(cand, "w") as f:
                json.dump(gb_snapshot({"BM_A": 1.0}), f)
            proc = subprocess.run(
                [sys.executable, SCRIPT, os.path.join(tmp, "missing.json"),
                 cand],
                capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stderr)
        self.assertIn("cannot read", proc.stderr)

    def test_corrupt_json_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "base.json")
            cand = os.path.join(tmp, "cand.json")
            with open(base, "w") as f:
                f.write("{not json")
            with open(cand, "w") as f:
                json.dump(gb_snapshot({"BM_A": 1.0}), f)
            proc = subprocess.run([sys.executable, SCRIPT, base, cand],
                                  capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_no_overlap_exits_2(self):
        code, out = run_compare(gb_snapshot({"BM_Old": 1.0}),
                                gb_snapshot({"BM_New": 1.0}))
        self.assertEqual(code, 2, out)
        self.assertIn("no comparable benchmarks", out)

    def test_bad_override_exits_2(self):
        code, out = run_compare(gb_snapshot({"BM_A": 1.0}),
                                gb_snapshot({"BM_A": 1.0}),
                                "--override", "no-equals-sign")
        self.assertEqual(code, 2, out)


class RenamedBenchmarkTest(unittest.TestCase):
    def test_rename_notes_but_passes_when_others_compare(self):
        base = gb_snapshot({"BM_Kept": 1000.0, "BM_Old": 1000.0})
        cand = gb_snapshot({"BM_Kept": 1000.0, "BM_New": 1000.0})
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)
        self.assertIn("BM_Old present in baseline only", out)
        self.assertIn("BM_New is new", out)

    def test_aggregate_median_preferred_over_raw_runs(self):
        base = gb_snapshot({"BM_A": 1000.0})
        cand = {
            "micro_compiler": {
                "benchmarks": [
                    # Raw repetition rows plus aggregates; the median row must
                    # win over both raw runs and the mean.
                    {"name": "BM_A/repeats:2", "run_name": "BM_A",
                     "real_time": 5000.0},
                    {"name": "BM_A/repeats:2", "run_name": "BM_A",
                     "real_time": 900.0},
                    {"name": "BM_A_mean", "run_name": "BM_A",
                     "aggregate_name": "mean", "real_time": 2950.0},
                    {"name": "BM_A_median", "run_name": "BM_A",
                     "aggregate_name": "median", "real_time": 1010.0},
                ]
            }
        }
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)
        self.assertIn("+1.0%", out)


class Fig06Test(unittest.TestCase):
    def test_same_scale_compares_wall_seconds(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06={"relm_shortest": 10.0})
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06={"relm_shortest": 20.0})
        code, out = run_compare(base, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("fig06.relm_shortest.wall_seconds", out)

    def test_scale_mismatch_skips_fig06(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06={"relm_shortest": 10.0})
        cand = gb_snapshot({"BM_A": 1.0}, scale=0.5,
                           fig06={"relm_shortest": 99.0})
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)
        self.assertIn("scales differ", out)

    def test_noise_floor_skips_tiny_baselines(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0, fig06={"fast": 0.01})
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0, fig06={"fast": 1.0})
        code, out = run_compare(base, cand, "--min-seconds", "0.5")
        self.assertEqual(code, 0, out)
        self.assertIn("noise floor", out)


class Fig06HigherBetterTest(unittest.TestCase):
    """Async-pipeline gates: speedup_<t>_thread and batch occupancy are
    higher-is-better — the candidate regresses by falling SHORT."""

    @staticmethod
    def pipeline_fig06(speedup_4, occupancy):
        return {
            "speedup_4_thread": speedup_4,
            "pipeline_4_thread": {"wall_seconds": 1.0,
                                  "batch_occupancy_mean": occupancy},
        }

    def test_parser_extracts_speedups_and_occupancy(self):
        snap = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw={"speedup_4_thread": 2.5,
                                      "speedup_8_thread": 2.7,
                                      # batched keys and plural forms are
                                      # wall-time sections, not gates
                                      "speedup_batched_1_thread": 1.3,
                                      "speedup_2_threads": 1.2,
                                      "pipeline_4_thread": {
                                          "wall_seconds": 1.0,
                                          "batch_occupancy_mean": 12.0}})
        hib = bench_compare.fig06_higher_better(snap)
        self.assertEqual(hib, {
            "fig06.speedup_4_thread": 2.5,
            "fig06.speedup_8_thread": 2.7,
            "fig06.pipeline_4_thread.batch_occupancy_mean": 12.0,
        })

    def test_speedup_shortfall_fails(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.5, 12.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.0, 12.0))
        # -20% against the default 10% gain threshold: regression.
        code, out = run_compare(base, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("fig06.speedup_4_thread", out)
        self.assertIn("REGRESSION", out)

    def test_occupancy_shortfall_fails(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.5, 12.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.5, 8.0))
        code, out = run_compare(base, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("batch_occupancy_mean", out)

    def test_small_shortfall_within_gain_threshold_passes(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.5, 12.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.3, 11.0))
        # -8% speedup and -8.3% occupancy: both inside the 10% gate.
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)

    def test_speedup_gain_is_not_a_regression(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.0, 10.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(4.0, 30.0))
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)

    def test_gain_threshold_flag_tightens(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.5, 12.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.4, 12.0))
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)
        code, out = run_compare(base, cand, "--gain-threshold", "2")
        self.assertEqual(code, 1, out)

    def test_scale_mismatch_skips_pipeline_gates(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.5, 12.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=0.5,
                           fig06_raw=self.pipeline_fig06(0.1, 0.1))
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)
        self.assertIn("scales differ", out)

    def test_missing_pipeline_section_degrades_to_note(self):
        # A baseline produced before the pipeline existed, or a candidate
        # run with a narrower RELM_BENCH_THREADS sweep: notes, not failures.
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig06_raw=self.pipeline_fig06(2.5, 12.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0, fig06={})
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)
        self.assertIn("present in baseline only", out)
        code, out = run_compare(cand, base)
        self.assertEqual(code, 0, out)
        self.assertIn("is new", out)


class FigGenerateTest(unittest.TestCase):
    """Generate-engine gates: tokens_per_sec at the 64-stream operating
    point (batched per thread count, plus the serial stream-at-a-time
    baseline) and the achieved tick occupancy are higher-is-better."""

    @staticmethod
    def generate_section(tps_64_t4, serial_tps=40000.0, occupancy=27.7):
        return {
            "serial_streams_64": {"wall_seconds": 0.01, "tokens": 410,
                                  "tokens_per_sec": serial_tps},
            "streams_64_threads_4": {"wall_seconds": 0.008, "tokens": 410,
                                     "tokens_per_sec": tps_64_t4,
                                     "batch_dedup_hits": 35,
                                     "tick_occupancy_mean": occupancy,
                                     "speedup_vs_serial": 1.1},
            # Small stream counts are reported, never gated.
            "streams_1_threads_4": {"wall_seconds": 0.0001, "tokens": 7,
                                    "tokens_per_sec": 99999.0,
                                    "tick_occupancy_mean": 1.0},
            "serial_streams_1": {"wall_seconds": 0.0002, "tokens": 7,
                                 "tokens_per_sec": 30000.0},
            "deterministic_across_sweep": True,
        }

    def test_parser_gates_only_the_64_stream_point(self):
        snap = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(50000.0))
        hib = bench_compare.fig_generate_higher_better(snap)
        self.assertEqual(hib, {
            "fig_generate.streams_64_threads_4.tokens_per_sec": 50000.0,
            "fig_generate.streams_64_threads_4.tick_occupancy_mean": 27.7,
            "fig_generate.serial_streams_64.tokens_per_sec": 40000.0,
        })

    def test_tokens_per_sec_shortfall_fails(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(50000.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(40000.0))
        # -20% against the default 10% gain threshold: regression.
        code, out = run_compare(base, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("streams_64_threads_4.tokens_per_sec", out)
        self.assertIn("REGRESSION", out)

    def test_occupancy_shortfall_fails(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(50000.0,
                                                              occupancy=27.7))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(50000.0,
                                                              occupancy=14.0))
        code, out = run_compare(base, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("tick_occupancy_mean", out)

    def test_small_shortfall_within_gain_threshold_passes(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(50000.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(46000.0))
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)

    def test_throughput_gain_is_not_a_regression(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(50000.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(150000.0,
                                                              serial_tps=80000.0,
                                                              occupancy=60.0))
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)

    def test_scale_mismatch_skips_generate_gates(self):
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(50000.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=0.5,
                           fig_generate=self.generate_section(1.0,
                                                              serial_tps=1.0,
                                                              occupancy=0.1))
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)
        self.assertIn("scales differ", out)

    def test_missing_generate_section_degrades_to_note(self):
        # A baseline produced before fig_generate existed must not fail the
        # gate — and a candidate that dropped the section only notes it.
        base = gb_snapshot({"BM_A": 1.0}, scale=1.0,
                           fig_generate=self.generate_section(50000.0))
        cand = gb_snapshot({"BM_A": 1.0}, scale=1.0)
        code, out = run_compare(base, cand)
        self.assertEqual(code, 0, out)
        self.assertIn("present in baseline only", out)
        code, out = run_compare(cand, base)
        self.assertEqual(code, 0, out)
        self.assertIn("is new", out)


if __name__ == "__main__":
    unittest.main()
