#!/usr/bin/env python3
"""Compare two scripts/bench.sh snapshots and fail on regressions.

    scripts/bench_compare.py BASELINE.json CANDIDATE.json [options]

Both inputs are BENCH_<date>.json files as written by scripts/bench.sh:
google-benchmark reports for micro_executor/micro_compiler plus fig06's
end-to-end summary. The microbenchmarks run a hardcoded 0.25-scale world, so
their per-benchmark times are comparable across snapshots regardless of the
fig06 scale; fig06 wall times and throughput are compared only when both
snapshots used the same scale.

A benchmark regresses when its candidate time exceeds the baseline by more
than the threshold (default 15%, tunable per benchmark with
--override REGEX=PCT; the first matching override wins). fig06's async-
pipeline speedups (speedup_<t>_thread) and mean batch occupancy
(pipeline_<t>_thread.batch_occupancy_mean) are higher-is-better: they
regress when the candidate falls SHORT of the baseline by more than
--gain-threshold (default 10%). fig_generate's aggregate throughput at the
64-stream operating point (streams_64_threads_<t>.tokens_per_sec, the
serial_streams_64 baseline, and the achieved tick occupancy) is gated the
same way. Exit status: 0 when nothing regressed, 1 on any regression, 2 on
malformed input.

Typical use — local check against the committed baseline:

    scripts/bench.sh 1.0
    scripts/bench_compare.py BENCH_20260806.json BENCH_$(date +%Y%m%d).json

CI's bench-gate regenerates the baseline from the PR base commit on the same
runner before comparing, so both snapshots see identical hardware.
"""

import argparse
import json
import re
import sys


def die_malformed(message):
    """Malformed input exits 2, distinct from exit 1 (= real regression)."""
    print(f"bench_compare: {message}", file=sys.stderr)
    sys.exit(2)


def load_snapshot(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die_malformed(f"cannot read {path}: {e}")


def gb_times(snapshot, suite):
    """Name -> real_time (ns) for a google-benchmark report in a snapshot.

    Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
    collapsed to the median when present; otherwise the single run is used.
    """
    out = {}
    report = snapshot.get(suite)
    if not isinstance(report, dict):
        return out
    for entry in report.get("benchmarks", []):
        name = entry.get("run_name", entry.get("name"))
        if name is None or "real_time" not in entry:
            continue
        agg = entry.get("aggregate_name")
        if agg not in (None, "median"):
            continue
        # A median row overrides the raw runs it aggregates.
        if agg == "median" or name not in out:
            out[name] = float(entry["real_time"])
    return out


def fig06_times(snapshot):
    """Name -> wall seconds for fig06's end-to-end runs."""
    out = {}
    fig06 = snapshot.get("fig06_throughput")
    if not isinstance(fig06, dict):
        return out
    for key, value in fig06.items():
        if isinstance(value, dict) and "wall_seconds" in value:
            out[f"fig06.{key}.wall_seconds"] = float(value["wall_seconds"])
    return out


def fig06_higher_better(snapshot):
    """Name -> value for fig06 metrics where LARGER is better.

    Covers the async-pipeline speedups (``speedup_<t>_thread``, the ratio of
    the strict serial wall time to the pipeline run at t threads) and the
    achieved batch occupancy (``pipeline_<t>_thread.batch_occupancy_mean``,
    mean model evaluations per pipeline round). A candidate value falling
    short of the baseline by more than the threshold is a regression.
    """
    out = {}
    fig06 = snapshot.get("fig06_throughput")
    if not isinstance(fig06, dict):
        return out
    for key, value in fig06.items():
        if re.fullmatch(r"speedup_\d+_thread", key) and \
                isinstance(value, (int, float)):
            out[f"fig06.{key}"] = float(value)
        if isinstance(value, dict) and "batch_occupancy_mean" in value:
            out[f"fig06.{key}.batch_occupancy_mean"] = \
                float(value["batch_occupancy_mean"])
    return out


def fig_generate_higher_better(snapshot):
    """Name -> value for fig_generate metrics where LARGER is better.

    The generate engine's acceptance metric is aggregate tokens/sec at the
    64-stream operating point: every ``streams_64_threads_<t>`` section is
    gated on its ``tokens_per_sec`` and achieved ``tick_occupancy_mean``,
    and the ``serial_streams_64`` stream-at-a-time baseline on its own
    throughput — so a regression in either the engine or the underlying
    sampling path trips the gate. Smaller stream counts are reported in the
    snapshot but not gated (their sub-millisecond walls are noise-dominated).
    """
    out = {}
    fig = snapshot.get("fig_generate")
    if not isinstance(fig, dict):
        return out
    for key, value in fig.items():
        if not isinstance(value, dict):
            continue
        if re.fullmatch(r"streams_64_threads_\d+", key):
            if "tokens_per_sec" in value:
                out[f"fig_generate.{key}.tokens_per_sec"] = \
                    float(value["tokens_per_sec"])
            if "tick_occupancy_mean" in value:
                out[f"fig_generate.{key}.tick_occupancy_mean"] = \
                    float(value["tick_occupancy_mean"])
        elif key == "serial_streams_64" and "tokens_per_sec" in value:
            out[f"fig_generate.{key}.tokens_per_sec"] = \
                float(value["tokens_per_sec"])
    return out


def parse_overrides(specs):
    overrides = []
    for spec in specs:
        name, sep, pct = spec.partition("=")
        if not sep:
            die_malformed(f"--override expects REGEX=PCT, got {spec!r}")
        try:
            overrides.append((re.compile(name), float(pct)))
        except (re.error, ValueError) as e:
            die_malformed(f"bad override {spec!r}: {e}")
    return overrides


def threshold_for(name, default, overrides):
    for pattern, pct in overrides:
        if pattern.search(name):
            return pct
    return default


def main():
    parser = argparse.ArgumentParser(
        description="diff two bench.sh snapshots, exit 1 on regression")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="regression threshold in percent (default 15)")
    parser.add_argument("--override", action="append", default=[],
                        metavar="REGEX=PCT",
                        help="per-benchmark threshold, e.g. "
                             "'BM_ShortestPath=3' (repeatable, first match "
                             "wins)")
    parser.add_argument("--min-seconds", type=float, default=0.0,
                        help="skip fig06 comparisons whose baseline wall time "
                             "is below this (noise floor, default 0)")
    parser.add_argument("--gain-threshold", type=float, default=10.0,
                        help="allowed shortfall in percent for "
                             "higher-is-better fig06 metrics (pipeline "
                             "speedups, batch occupancy; default 10)")
    args = parser.parse_args()

    base = load_snapshot(args.baseline)
    cand = load_snapshot(args.candidate)
    overrides = parse_overrides(args.override)

    # (name, base_value, cand_value, unit, higher_better). Lower-is-better
    # entries (times) regress when the candidate exceeds the baseline;
    # higher-is-better entries (speedups, occupancy) regress when the
    # candidate falls short of it.
    comparisons = []
    for suite in ("micro_executor", "micro_compiler"):
        base_times = gb_times(base, suite)
        cand_times = gb_times(cand, suite)
        for name in sorted(base_times):
            if name in cand_times:
                comparisons.append((name, base_times[name], cand_times[name],
                                    "ns", False))
            else:
                print(f"note: {name} present in baseline only (removed?)")
        for name in sorted(set(cand_times) - set(base_times)):
            print(f"note: {name} is new (no baseline)")

    if base.get("scale") == cand.get("scale"):
        base_fig = fig06_times(base)
        cand_fig = fig06_times(cand)
        for name in sorted(base_fig):
            if name not in cand_fig:
                continue
            if base_fig[name] < args.min_seconds:
                print(f"note: skipping {name}: baseline "
                      f"{base_fig[name]:.3f}s below noise floor")
                continue
            comparisons.append((name, base_fig[name], cand_fig[name], "s",
                                False))
        base_hib = fig06_higher_better(base)
        cand_hib = fig06_higher_better(cand)
        for name in sorted(base_hib):
            if name in cand_hib:
                comparisons.append((name, base_hib[name], cand_hib[name], "",
                                    True))
            else:
                print(f"note: {name} present in baseline only (removed?)")
        for name in sorted(set(cand_hib) - set(base_hib)):
            print(f"note: {name} is new (no baseline)")
        base_gen = fig_generate_higher_better(base)
        cand_gen = fig_generate_higher_better(cand)
        for name in sorted(base_gen):
            if name in cand_gen:
                comparisons.append((name, base_gen[name], cand_gen[name], "",
                                    True))
            else:
                print(f"note: {name} present in baseline only (removed?)")
        for name in sorted(set(cand_gen) - set(base_gen)):
            print(f"note: {name} is new (no baseline)")
    else:
        print(f"note: scales differ (baseline {base.get('scale')} vs "
              f"candidate {cand.get('scale')}); skipping fig06/fig_generate "
              f"comparison")

    if not comparisons:
        die_malformed("no comparable benchmarks found (malformed snapshots?)")

    regressions = []
    width = max(len(name) for name, *_ in comparisons)
    print(f"{'benchmark':<{width}} {'baseline':>12} {'candidate':>12} "
          f"{'delta':>8} {'limit':>7}")
    for name, base_v, cand_v, unit, higher_better in comparisons:
        if higher_better:
            limit = args.gain_threshold
        else:
            limit = threshold_for(name, args.threshold, overrides)
        delta = ((cand_v - base_v) / base_v * 100.0) if base_v > 0 else 0.0
        # delta is always "candidate relative to baseline"; the regressing
        # direction depends on the metric.
        regressed = (-delta if higher_better else delta) > limit
        flag = ""
        if regressed:
            regressions.append((name, delta, limit))
            flag = "  << REGRESSION"
        print(f"{name:<{width}} {base_v:>10.1f}{unit:>2} {cand_v:>10.1f}"
              f"{unit:>2} {delta:>+7.1f}% {limit:>6.1f}%{flag}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond threshold:")
        for name, delta, limit in regressions:
            print(f"  {name}: {delta:+.1f}% (limit {limit:.1f}%)")
        return 1
    print(f"\nok: {len(comparisons)} benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
