#!/usr/bin/env python3
"""Determinism lint: unordered-container iteration in serialization paths.

Iterating a std::unordered_map/std::unordered_set produces a
platform-/libc++-/seed-dependent order. In most code that is harmless, but in
anything that writes bytes a human or a test will compare -- model files,
artifact stores, JSON emitters, executor result emission -- it silently makes
output non-deterministic. This lint flags range-for (and explicit .begin())
iteration over unordered containers in the files that form those output
paths.

Scope: files under src/ whose basename contains one of the serialization-ish
tokens (io, serialize, artifact, json, emit, metrics, trace, verify,
executor, writer). Everything else may iterate unordered containers freely.

Suppression: a finding is intentional when the iteration order provably
cannot reach the output (e.g. it is folded into a sorted std::map first).
Tag the loop -- same line or the line directly above -- with:

    // relm-lint: ordered -- <why the order cannot leak>

Modes:
    --mode regex        pure-regex scan (default workhorse; no toolchain)
    --mode clang-query  AST-based scan via clang-query + compile_commands.json
    --mode auto         clang-query when available, silent regex fallback

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys

SUPPRESS_TAG = "relm-lint: ordered"

# Basename tokens that put a file in scope. "io" must be a whole path
# component ("io.cpp", "model_io.hpp") so it does not match e.g.
# "memorization.cpp"; the longer tokens are unambiguous as substrings.
SCOPE_SUBSTRING_TOKENS = (
    "serialize",
    "artifact",
    "json",
    "emit",
    "metrics",
    "trace",
    "verify",
    "executor",
    "writer",
)
SCOPE_COMPONENT_TOKENS = ("io",)

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*(?:\.\w+|->\w+)*)\s*\.\s*begin\s*\(")


def in_scope(path: str) -> bool:
    base = os.path.basename(path).lower()
    if any(tok in base for tok in SCOPE_SUBSTRING_TOKENS):
        return True
    components = re.split(r"[._\-]", base)
    return any(tok in components for tok in SCOPE_COMPONENT_TOKENS)


def strip_strings_and_comments(line: str) -> str:
    """Blank out string/char literals and // comments (keeps length/columns)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def skip_template_args(text: str, start: int) -> int:
    """Given text[start] == '<', return the index just past the matching '>'."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


def collect_unordered_names(text: str) -> set[str]:
    """Names of variables/members declared with an unordered container type.

    Handles multi-line declarations and trailing attribute macros
    (RELM_GUARDED_BY(...)). Misses `auto` deductions and typedefs -- the
    direct-expression check below catches the common remainder.
    """
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        after = skip_template_args(text, m.end() - 1)
        # Declarator: optional &/*/whitespace, then the identifier. A '('
        # right after means a function return type -- skip those.
        decl = re.match(r"[\s&*]*([A-Za-z_]\w*)", text[after : after + 200])
        if decl and not text[after + decl.end() :].lstrip().startswith("("):
            names.add(decl.group(1))
    return names


def line_suppressed(lines: list[str], idx: int) -> bool:
    """Tag on the flagged line, or anywhere in the comment block above it."""
    if SUPPRESS_TAG in lines[idx]:
        return True
    i = idx - 1
    while i >= 0 and lines[i].strip().startswith("//"):
        if SUPPRESS_TAG in lines[i]:
            return True
        i -= 1
    return False


def scan_file_regex(path: str) -> list[tuple[str, int, str]]:
    with open(path, encoding="utf-8", errors="replace") as f:
        raw_lines = f.read().splitlines()
    # Scan against comment/string-stripped text (so "for (" inside a string
    # cannot match), but check suppressions against the raw lines (the tag IS
    # a comment).
    text = "\n".join(strip_strings_and_comments(l) for l in raw_lines)
    lines = text.splitlines()
    names = collect_unordered_names(text)

    findings = []
    for idx, line in enumerate(lines):
        for m in RANGE_FOR_RE.finditer(line):
            # Join a few lines so multi-line for-headers parse; stop at the
            # first ')' at depth zero.
            header = " ".join(lines[idx : idx + 4])[m.start() :]
            depth = 0
            for j, c in enumerate(header):
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        header = header[: j + 1]
                        break
            colon = re.search(r":(?!:)", header)
            if not colon:
                continue  # classic for(;;), not a range-for
            range_expr = header[colon.end() : -1].strip()
            tail = range_expr.split(".")[-1].split("->")[-1]
            base = re.match(r"([A-Za-z_]\w*)", tail)
            direct = "unordered_" in range_expr
            tracked = base is not None and base.group(1) in names
            if (direct or tracked) and not line_suppressed(raw_lines, idx):
                findings.append(
                    (path, idx + 1, f"range-for over unordered container "
                                    f"'{range_expr}'"))
        for m in BEGIN_CALL_RE.finditer(line):
            receiver = m.group(1).split(".")[-1].split("->")[-1]
            if receiver in names and not line_suppressed(raw_lines, idx):
                findings.append(
                    (path, idx + 1,
                     f"iterator loop over unordered container '{receiver}'"))
    return findings


CLANG_QUERY_MATCHER = (
    "match cxxForRangeStmt(hasRangeInit(expr(hasType(hasUnqualifiedDesugaredType("
    "recordType(hasDeclaration(classTemplateSpecializationDecl("
    "matchesName(\"::std::unordered_\")))))))))"
)


def scan_clang_query(files: list[str], build_dir: str) -> list[tuple[str, int, str]]:
    """AST-exact scan. Raises on any tool/setup failure (caller falls back)."""
    cq = shutil.which("clang-query")
    if cq is None:
        raise RuntimeError("clang-query not on PATH")
    if not os.path.exists(os.path.join(build_dir, "compile_commands.json")):
        raise RuntimeError(f"no compile_commands.json in {build_dir}")
    sources = [f for f in files if f.endswith(".cpp")]
    proc = subprocess.run(
        [cq, "-p", build_dir, f"-c={CLANG_QUERY_MATCHER}", *sources],
        capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        raise RuntimeError(f"clang-query failed: {proc.stderr.strip()[:400]}")
    findings = []
    for m in re.finditer(r"^(\S+\.(?:cpp|hpp)):(\d+):\d+: note", proc.stdout, re.M):
        path, lineno = m.group(1), int(m.group(2))
        path = os.path.relpath(path)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                lines = f.read().splitlines()
            if line_suppressed(lines, lineno - 1):
                continue
        except OSError:
            pass
        findings.append((path, lineno, "range-for over unordered container"))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("roots", nargs="*", default=["src"],
                        help="directories to scan (default: src)")
    parser.add_argument("--mode", choices=("auto", "regex", "clang-query"),
                        default="auto")
    parser.add_argument("--build-dir", default="build",
                        help="compile_commands.json location for clang-query")
    parser.add_argument("--all-files", action="store_true",
                        help="scan every file, not just serialization paths")
    args = parser.parse_args()

    roots = args.roots or ["src"]
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        if not os.path.isdir(root):
            print(f"determinism_lint: no such path: {root}", file=sys.stderr)
            return 2
        for dirpath, _, basenames in os.walk(root):
            for name in sorted(basenames):
                if name.endswith((".cpp", ".hpp", ".cc", ".h")):
                    files.append(os.path.join(dirpath, name))
    files = sorted(f for f in files if args.all_files or in_scope(f))

    findings: list[tuple[str, int, str]] = []
    mode = args.mode
    if mode in ("auto", "clang-query"):
        try:
            findings = scan_clang_query(files, args.build_dir)
            mode = "clang-query"
        except Exception as err:  # noqa: BLE001 -- any failure means fallback
            if args.mode == "clang-query":
                print(f"determinism_lint: {err}", file=sys.stderr)
                return 2
            mode = "regex"
    if mode == "regex":
        for path in files:
            findings.extend(scan_file_regex(path))

    for path, lineno, message in findings:
        print(f"{path}:{lineno}: {message} -- serialization-path iteration "
              f"order is not deterministic; sort first, or tag with "
              f"'// {SUPPRESS_TAG} -- <reason>'")
    print(f"determinism_lint[{mode}]: scanned {len(files)} file(s), "
          f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
