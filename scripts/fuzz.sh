#!/bin/sh
# Fuzzing driver: builds the fuzz tree (RELM_FUZZERS=ON), replays the checked
# in corpus through the structured fuzz targets, runs each target on seeded
# random inputs, and then runs the differential fuzzer (`relm fuzz`) — the
# oracle-backed random-trial harness described in docs/TESTING.md. Exits
# non-zero on any finding; minimized repro files (fuzz-repro-<seed>.json) and
# a summary land in the output directory.
#   scripts/fuzz.sh [trials]
# Environment:
#   RELM_FUZZ_TRIALS    differential trials (default 500; argv[1] overrides)
#   RELM_FUZZ_SEED      base seed for every stage (default 1)
#   RELM_FUZZ_RUNS      random inputs per structured target (default 20000)
#   RELM_FUZZ_OUT       output directory (default fuzz-out in the repo root)
#   RELM_FUZZ_SANITIZE  RELM_SANITIZE value for the fuzz tree, e.g.
#                       "address;undefined" (default: none)
set -e
cd "$(dirname "$0")/.."
TRIALS="${1:-${RELM_FUZZ_TRIALS:-500}}"
SEED="${RELM_FUZZ_SEED:-1}"
RUNS="${RELM_FUZZ_RUNS:-20000}"
OUT="${RELM_FUZZ_OUT:-fuzz-out}"
BUILD=build-fuzz

if command -v ninja >/dev/null 2>&1; then
  GEN="-G Ninja"; GEN_NAME="Ninja"
else
  GEN=""; GEN_NAME="Unix Makefiles"
fi
if [ -f "$BUILD/CMakeCache.txt" ]; then
  CACHED_GEN=$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$BUILD/CMakeCache.txt")
  if [ -n "$CACHED_GEN" ] && [ "$CACHED_GEN" != "$GEN_NAME" ]; then
    echo "[fuzz] $BUILD was configured with '$CACHED_GEN'," \
         "reconfiguring for '$GEN_NAME'"
    rm -rf "$BUILD"
  fi
fi
SANITIZE_FLAG=""
if [ -n "${RELM_FUZZ_SANITIZE:-}" ]; then
  SANITIZE_FLAG="-DRELM_SANITIZE=${RELM_FUZZ_SANITIZE}"
fi
# shellcheck disable=SC2086
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DRELM_FUZZERS=ON \
    $SANITIZE_FLAG $GEN >/dev/null
cmake --build "$BUILD" -j --target \
    relm_cli fuzz_regex_parser fuzz_algebra_compile fuzz_dfa_loader \
    fuzz_artifact_loader \
    fuzz_repro_json >/dev/null

mkdir -p "$OUT"

# Structured targets: checked-in corpus first (regressions must stay fixed),
# then seeded random inputs. Under Clang these binaries are real libFuzzer
# targets and this invocation runs their fixed-input fallback equivalent via
# -runs; under GCC the plain-loop driver takes the same corpus paths.
echo "[fuzz] structured targets (runs=$RUNS seed=$SEED)"
for target in fuzz_regex_parser fuzz_algebra_compile fuzz_dfa_loader \
              fuzz_artifact_loader fuzz_repro_json; do
  if [ -n "${RELM_FUZZ_LIBFUZZER:-}" ]; then
    "$BUILD/fuzz/$target" -runs="$RUNS" -seed="$SEED" tests/fuzz_corpus
  else
    "$BUILD/fuzz/$target" --runs "$RUNS" --seed "$SEED" \
        tests/fuzz_corpus/*.json
  fi
done

# Differential fuzzing: random trial cases checked against the brute-force
# oracle under every cache configuration. Failing seeds are shrunk and their
# repro files written to $OUT; `relm fuzz` exits 2 on any failure and set -e
# propagates it (after the summary below is already on disk).
echo "[fuzz] differential trials (trials=$TRIALS seed=$SEED)"
STATUS=0
"$BUILD"/src/tools/relm fuzz --trials "$TRIALS" --seed "$SEED" \
    --out "$OUT" | tee "$BUILD/fuzz_diff.txt" || STATUS=$?

# Summary, written atomically (temp file + rename) so a reader — or the CI
# artifact step — never sees a truncated file even when a stage failed.
TMP_OUT=$(mktemp "$BUILD/fuzz_out.XXXXXX")
{
  printf '{\n'
  printf '"date": "%s",\n' "$(date +%Y-%m-%d)"
  printf '"trials": %s,\n' "$TRIALS"
  printf '"seed": %s,\n' "$SEED"
  printf '"structured_runs": %s,\n' "$RUNS"
  printf '"differential_exit": %s,\n' "$STATUS"
  printf '"summary": "%s"\n' "$(tail -1 "$BUILD/fuzz_diff.txt" | tr -d '"')"
  printf '}\n'
} > "$TMP_OUT"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$TMP_OUT" >/dev/null
fi
mv -f "$TMP_OUT" "$OUT/fuzz-summary.json"
echo "[fuzz] $OUT/fuzz-summary.json"
exit "$STATUS"
