#!/bin/sh
# Performance snapshot driver: builds Release, runs the executor/compiler
# microbenchmarks, the fig06 throughput comparison, and the fig_generate
# multi-stream generation sweep, and writes the results to BENCH_<date>.json
# at the repo root (wall times, llm_calls, cache hit rates, metrics registry
# snapshots; see docs/PERFORMANCE.md for how to read it, and
# scripts/bench_compare.py for diffing two snapshots).
#   scripts/bench.sh [scale]
# Environment:
#   RELM_BENCH_SCALE    workload scale for fig06/fig_generate (overridden by
#                       argv[1])
#   RELM_BENCH_OUT      output path (default BENCH_<date>.json in repo root)
#   RELM_THREADS        default shared-pool size for the parallel batch API
#   RELM_BENCH_THREADS  fig06 async-pipeline and fig_generate thread sweep
#                       (default "1 2 4 8"); one pipeline_<t>_thread /
#                       streams_<s>_threads_<t> JSON section per entry
set -e
cd "$(dirname "$0")/.."
SCALE="${1:-${RELM_BENCH_SCALE:-1.0}}"
BUILD=build-bench
OUT="${RELM_BENCH_OUT:-BENCH_$(date +%Y%m%d).json}"
RELM_BENCH_THREADS="${RELM_BENCH_THREADS:-1 2 4 8}"
export RELM_BENCH_THREADS

if command -v ninja >/dev/null 2>&1; then
  GEN="-G Ninja"; GEN_NAME="Ninja"
else
  GEN=""; GEN_NAME="Unix Makefiles"
fi
# A build tree configured with a different generator (e.g. Makefiles before
# ninja was installed) makes cmake hard-fail; detect and reconfigure instead
# of aborting the run.
if [ -f "$BUILD/CMakeCache.txt" ]; then
  CACHED_GEN=$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$BUILD/CMakeCache.txt")
  if [ -n "$CACHED_GEN" ] && [ "$CACHED_GEN" != "$GEN_NAME" ]; then
    echo "[bench] $BUILD was configured with '$CACHED_GEN'," \
         "reconfiguring for '$GEN_NAME'"
    rm -rf "$BUILD"
  fi
fi
# shellcheck disable=SC2086
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release $GEN >/dev/null
cmake --build "$BUILD" -j --target micro_executor micro_compiler fig06_throughput fig_generate >/dev/null

echo "[bench] micro_executor"
"$BUILD"/bench/micro_executor \
    --benchmark_format=json \
    --benchmark_out="$BUILD"/micro_executor.json \
    --benchmark_out_format=json >/dev/null
echo "[bench] micro_compiler"
"$BUILD"/bench/micro_compiler \
    --benchmark_format=json \
    --benchmark_out="$BUILD"/micro_compiler.json \
    --benchmark_out_format=json >/dev/null
echo "[bench] fig06_throughput (scale=$SCALE)"
# No pipe: fig06 exits non-zero on a determinism regression and set -e
# must see that status.
RELM_BENCH_SCALE="$SCALE" RELM_BENCH_JSON=1 \
    "$BUILD"/bench/fig06_throughput > "$BUILD"/fig06.txt
cat "$BUILD"/fig06.txt
grep '^BENCH_JSON ' "$BUILD"/fig06.txt | sed 's/^BENCH_JSON //' \
    > "$BUILD"/fig06.json

echo "[bench] fig_generate (scale=$SCALE)"
# No pipe: fig_generate exits non-zero when any batched configuration's
# per-stream outputs diverge from the serial baseline, and set -e must see
# that status.
RELM_BENCH_SCALE="$SCALE" RELM_BENCH_JSON=1 \
    "$BUILD"/bench/fig_generate > "$BUILD"/fig_generate.txt
cat "$BUILD"/fig_generate.txt
grep '^BENCH_JSON ' "$BUILD"/fig_generate.txt | sed 's/^BENCH_JSON //' \
    > "$BUILD"/fig_generate.json

# Assemble the snapshot: fig06's end-to-end numbers plus both raw
# google-benchmark reports. Written to a temp file and moved into place
# atomically so a failed run (or a same-day rerun racing a reader) never
# leaves a truncated $OUT behind.
TMP_OUT=$(mktemp "$BUILD/bench_out.XXXXXX")
{
  printf '{\n'
  printf '"date": "%s",\n' "$(date +%Y-%m-%d)"
  printf '"scale": %s,\n' "$SCALE"
  printf '"fig06_throughput": '
  cat "$BUILD"/fig06.json
  printf ',\n"fig_generate": '
  cat "$BUILD"/fig_generate.json
  printf ',\n"micro_executor": '
  cat "$BUILD"/micro_executor.json
  printf ',\n"micro_compiler": '
  cat "$BUILD"/micro_compiler.json
  printf '\n}\n'
} > "$TMP_OUT"

if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$TMP_OUT" >/dev/null
fi
mv -f "$TMP_OUT" "$OUT"
echo "[bench] $OUT"

# Keep exactly one checked-in snapshot: when writing the default repo-root
# BENCH_<date>.json, prune older-dated siblings (a custom RELM_BENCH_OUT is
# somebody's scratch file — leave the checked-in snapshot alone then).
case "$OUT" in
  BENCH_*.json)
    for old in BENCH_*.json; do
      [ "$old" = "$OUT" ] && continue
      echo "[bench] pruning superseded snapshot $old"
      rm -f "$old"
    done
    ;;
esac
