#!/bin/sh
# Static checks over the library and tool sources.
#
#   scripts/lint.sh [--warnings-as-errors] [build-dir]
#
# Stage 1 (always runs, no toolchain needed): grep-enforced sync policy --
#   * no raw std synchronization primitives outside src/util/sync.hpp; every
#     locking site must go through the annotated relm wrappers so the clang
#     thread-safety build (cmake --preset tsa) sees the whole library;
#   * RELM_NO_THREAD_SAFETY_ANALYSIS may appear only inside util/sync.hpp.
#
# Stage 2: clang-tidy (policy: repo-root .clang-tidy) using the
# compile_commands.json exported by any CMake build dir (default ./build).
# Parallelized through run-clang-tidy when present. When clang-tidy is
# missing the stage is skipped with a notice -- unless RELM_LINT_REQUIRED=1
# (set in CI), in which case a missing clang-tidy is a hard failure instead
# of a silently-green job.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

WERROR=0
BUILD="$ROOT/build"
for arg in "$@"; do
  case "$arg" in
    --warnings-as-errors) WERROR=1 ;;
    -h|--help) sed -n '2,18p' "$0"; exit 0 ;;
    *) BUILD="$arg" ;;
  esac
done

# --- Stage 1: sync-policy greps ------------------------------------------

fail=0

# grep -r returns 1 when nothing matches, which is the good case here.
raw_sync="$(grep -rn -E \
  'std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|shared_lock)\b' \
  "$ROOT/src" --include='*.cpp' --include='*.hpp' \
  | grep -v 'src/util/sync\.hpp' || true)"
if [ -n "$raw_sync" ]; then
  echo "lint: raw std sync primitive outside util/sync.hpp (use relm::Mutex/" >&2
  echo "lint: ScopedLock/CondVar from util/sync.hpp instead):" >&2
  echo "$raw_sync" >&2
  fail=1
fi

escapes="$(grep -rn 'RELM_NO_THREAD_SAFETY_ANALYSIS' \
  "$ROOT/src" --include='*.cpp' --include='*.hpp' \
  | grep -v 'src/util/sync\.hpp' || true)"
if [ -n "$escapes" ]; then
  echo "lint: RELM_NO_THREAD_SAFETY_ANALYSIS outside util/sync.hpp --" >&2
  echo "lint: restructure the code instead of suppressing the analysis:" >&2
  echo "$escapes" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "lint: sync policy ok"

# --- Stage 2: clang-tidy -------------------------------------------------

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16; do
    if command -v "$candidate" >/dev/null 2>&1; then
      TIDY="$candidate"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  if [ "${RELM_LINT_REQUIRED:-0}" = "1" ]; then
    echo "lint: clang-tidy not found but RELM_LINT_REQUIRED=1" >&2
    echo "lint: install clang-tidy or set CLANG_TIDY" >&2
    exit 1
  fi
  echo "lint: clang-tidy not found; skipping (set CLANG_TIDY or install it)" >&2
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "lint: $BUILD/compile_commands.json missing; configure first:" >&2
  echo "lint:   cmake --preset default   (or: cmake -B $BUILD -S $ROOT)" >&2
  exit 1
fi

WERROR_ARGS=""
if [ "$WERROR" -eq 1 ]; then
  WERROR_ARGS="--warnings-as-errors=*"
fi

# run-clang-tidy ships with clang-tidy and fans out across cores; fall back
# to one serial clang-tidy invocation when it is absent.
RUNNER="${RUN_CLANG_TIDY:-}"
if [ -z "$RUNNER" ]; then
  for candidate in run-clang-tidy run-clang-tidy-18 run-clang-tidy-17 \
                   run-clang-tidy-16 run-clang-tidy.py; do
    if command -v "$candidate" >/dev/null 2>&1; then
      RUNNER="$candidate"
      break
    fi
  done
fi

FILES="$(find "$ROOT/src" -name '*.cpp' | sort)"
if [ -n "$RUNNER" ]; then
  JOBS="$(nproc 2>/dev/null || echo 4)"
  echo "lint: $RUNNER -j$JOBS ($TIDY) over $(echo "$FILES" | wc -l) files ($BUILD)"
  # run-clang-tidy treats positional args as regexes over the compile db;
  # anchor on the source dir so generated/third-party TUs stay out.
  "$RUNNER" -clang-tidy-binary "$TIDY" -p "$BUILD" -quiet -j "$JOBS" \
    ${WERROR_ARGS:+-warnings-as-errors '*'} "$ROOT/src/.*\.cpp" \
    >/tmp/relm_lint_out 2>&1 || { cat /tmp/relm_lint_out; exit 1; }
  grep -E 'warning:|error:' /tmp/relm_lint_out || true
else
  echo "lint: $TIDY over $(echo "$FILES" | wc -l) files ($BUILD)"
  # shellcheck disable=SC2086 -- word-splitting FILES is intended
  "$TIDY" -p "$BUILD" --quiet $WERROR_ARGS $FILES
fi
echo "lint: ok"
