#!/bin/sh
# Runs clang-tidy (policy: repo-root .clang-tidy) over the library and tool
# sources, using the compile_commands.json exported by any CMake build dir.
#
#   scripts/lint.sh [build-dir]
#
# Defaults to ./build. Exits 0 with a notice when clang-tidy is unavailable
# (the pinned container ships only gcc); CI installs it on the runner.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16; do
    if command -v "$candidate" >/dev/null 2>&1; then
      TIDY="$candidate"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "lint: clang-tidy not found; skipping (set CLANG_TIDY or install it)" >&2
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "lint: $BUILD/compile_commands.json missing; configure first:" >&2
  echo "lint:   cmake --preset default   (or: cmake -B $BUILD -S $ROOT)" >&2
  exit 1
fi

FILES="$(find "$ROOT/src" -name '*.cpp' | sort)"
echo "lint: $TIDY over $(echo "$FILES" | wc -l) files ($BUILD)"
# shellcheck disable=SC2086 -- word-splitting FILES is intended
"$TIDY" -p "$BUILD" --quiet $FILES
echo "lint: ok"
